#include "serve/protocol.hpp"

#include <sstream>

#include "accel/stats_io.hpp"
#include "serve/json.hpp"

namespace dim::serve {
namespace {

// Echoable id from a parsed value: string, or integer >= 0.
bool read_id(const JsonValue& v, RequestId& out) {
  if (v.is_string()) {
    out.is_string = true;
    out.text = v.string;
    return true;
  }
  if (v.is_u64()) {
    out.is_string = false;
    out.text = std::to_string(v.as_u64());
    return true;
  }
  return false;
}

void write_id(std::ostream& out, const RequestId& id) {
  if (id.text.empty() && !id.is_string) {
    out << "null";
  } else if (id.is_string) {
    out << '"' << accel::json_escape(id.text) << '"';
  } else {
    out << id.text;
  }
}

struct FieldError {
  std::string detail;
};

uint64_t get_u64(const JsonValue& obj, const char* key, uint64_t fallback) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr) return fallback;
  if (!v->is_u64()) throw FieldError{std::string(key) + " must be a non-negative integer"};
  return v->as_u64();
}

bool get_bool(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) throw FieldError{std::string(key) + " must be a boolean"};
  return v->boolean;
}

std::string get_string(const JsonValue& obj, const char* key,
                       const std::string& fallback) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) throw FieldError{std::string(key) + " must be a string"};
  return v->string;
}

bool valid_shape(const std::string& name) {
  return name == "config1" || name == "config2" || name == "config3" ||
         name == "ideal";
}

void parse_program_selection(const JsonValue& doc, Request& req) {
  req.workload = get_string(doc, "workload", "");
  req.source = get_string(doc, "source", "");
  const uint64_t scale = get_u64(doc, "scale", 1);
  if (scale < 1 || scale > 64) throw FieldError{"scale must be in [1, 64]"};
  req.scale = static_cast<int>(scale);
  if (req.workload.empty() && req.source.empty()) {
    throw FieldError{"either workload or source is required"};
  }
  if (!req.workload.empty() && !req.source.empty()) {
    throw FieldError{"workload and source are mutually exclusive"};
  }
}

void parse_point_config(const JsonValue& doc, Request& req) {
  req.shape = get_string(doc, "shape", req.shape);
  if (!valid_shape(req.shape)) throw FieldError{"unknown shape " + req.shape};
  req.slots = get_u64(doc, "slots", req.slots);
  if (req.slots < 1 || req.slots > 4096) throw FieldError{"slots must be in [1, 4096]"};
  req.speculation = get_bool(doc, "spec", req.speculation);
  req.want_baseline = get_bool(doc, "baseline", req.want_baseline);
}

// Optional scheduling fields, legal on every queued kind (run/sweep/fuzz).
// `deadline_ms: 0` is allowed and means "already expired" — it pins the
// deadline_expired path deterministically in tests.
void parse_scheduling(const JsonValue& doc, Request& req) {
  const uint64_t priority = get_u64(doc, "priority", 0);
  if (priority > static_cast<uint64_t>(kMaxPriority)) {
    throw FieldError{"priority must be in [0, 9]"};
  }
  req.priority = static_cast<int>(priority);
  if (const JsonValue* d = doc.get("deadline_ms")) {
    if (!d->is_u64()) throw FieldError{"deadline_ms must be a non-negative integer"};
    req.has_deadline = true;
    req.deadline_ms = d->as_u64();
  }
}

}  // namespace

ParseOutcome parse_request(const std::string& line) {
  ParseOutcome outcome;
  if (line.size() > kMaxRequestBytes) {
    outcome.error = kErrParse;
    outcome.detail = "request line exceeds " +
                     std::to_string(kMaxRequestBytes) + " bytes";
    return outcome;
  }
  JsonValue doc;
  try {
    doc = parse_json(line);
  } catch (const JsonError& e) {
    outcome.error = kErrParse;
    outcome.detail = e.what();
    return outcome;
  }
  if (!doc.is_object()) {
    outcome.error = kErrParse;
    outcome.detail = "request must be a JSON object";
    return outcome;
  }
  // Recover the id first so every later failure can still be correlated.
  if (const JsonValue* id = doc.get("id")) {
    if (!read_id(*id, outcome.id)) {
      outcome.error = kErrBadRequest;
      outcome.detail = "id must be a string or a non-negative integer";
      return outcome;
    }
  } else {
    outcome.error = kErrBadRequest;
    outcome.detail = "id is required";
    return outcome;
  }

  Request req;
  req.id = outcome.id;
  const std::string kind = [&] {
    const JsonValue* k = doc.get("kind");
    return (k != nullptr && k->is_string()) ? k->string : std::string();
  }();

  try {
    if (kind == "ping") {
      req.kind = RequestKind::kPing;
    } else if (kind == "run") {
      req.kind = RequestKind::kRun;
      parse_program_selection(doc, req);
      parse_point_config(doc, req);
      if (const JsonValue* b = doc.get("budget")) {
        if (!b->is_u64()) throw FieldError{"budget must be a non-negative integer"};
        req.budget = b->as_u64();
        if (req.budget == 0) {
          // A zero budget simulates nothing: zero cycles on both sides, so
          // any speedup in the response would divide by zero. Rejected
          // here so the executor never sees it.
          outcome.error = kErrZeroBudget;
          outcome.detail = "budget must be positive; omit it for an unbudgeted run";
          return outcome;
        }
      }
      req.warm = get_bool(doc, "warm", false);
      parse_scheduling(doc, req);
    } else if (kind == "sweep") {
      req.kind = RequestKind::kSweep;
      parse_program_selection(doc, req);
      parse_point_config(doc, req);
      if (const JsonValue* shapes = doc.get("shapes")) {
        if (!shapes->is_array() || shapes->array.empty()) {
          throw FieldError{"shapes must be a non-empty array"};
        }
        for (const JsonValue& s : shapes->array) {
          if (!s.is_string() || !valid_shape(s.string)) {
            throw FieldError{"shapes entries must name config1|config2|config3|ideal"};
          }
          req.shapes.push_back(s.string);
        }
      }
      if (const JsonValue* slots = doc.get("slots_axis")) {
        if (!slots->is_array() || slots->array.empty()) {
          throw FieldError{"slots_axis must be a non-empty array"};
        }
        for (const JsonValue& s : slots->array) {
          if (!s.is_u64() || s.as_u64() < 1 || s.as_u64() > 4096) {
            throw FieldError{"slots_axis entries must be integers in [1, 4096]"};
          }
          req.slots_axis.push_back(s.as_u64());
        }
      }
      if (const JsonValue* spec = doc.get("spec_axis")) {
        if (!spec->is_array() || spec->array.empty()) {
          throw FieldError{"spec_axis must be a non-empty array"};
        }
        for (const JsonValue& s : spec->array) {
          if (!s.is_bool()) throw FieldError{"spec_axis entries must be booleans"};
          req.spec_axis.push_back(s.boolean);
        }
      }
      if (req.shapes.empty()) req.shapes.push_back(req.shape);
      if (req.slots_axis.empty()) req.slots_axis.push_back(req.slots);
      if (req.spec_axis.empty()) req.spec_axis.push_back(req.speculation);
      parse_scheduling(doc, req);
    } else if (kind == "fuzz") {
      req.kind = RequestKind::kFuzz;
      const uint64_t seeds = get_u64(doc, "seeds", 10);
      if (seeds < 1 || seeds > 100000) throw FieldError{"seeds must be in [1, 100000]"};
      req.seeds = static_cast<int>(seeds);
      req.seed_start = get_u64(doc, "seed_start", 0);
      req.matrix = get_string(doc, "matrix", "quick");
      if (req.matrix != "quick" && req.matrix != "full") {
        throw FieldError{"matrix must be quick or full"};
      }
      parse_scheduling(doc, req);
    } else if (kind == "stats") {
      req.kind = RequestKind::kStats;
    } else if (kind == "cancel") {
      req.kind = RequestKind::kCancel;
      const JsonValue* target = doc.get("target");
      if (target == nullptr || !read_id(*target, req.target)) {
        throw FieldError{"cancel requires a target id"};
      }
    } else if (kind == "shutdown") {
      req.kind = RequestKind::kShutdown;
    } else {
      throw FieldError{kind.empty() ? "kind is required"
                                    : "unknown kind \"" + kind + "\""};
    }
  } catch (const FieldError& e) {
    outcome.error = kErrBadRequest;
    outcome.detail = e.detail;
    return outcome;
  }

  outcome.ok = true;
  outcome.request = std::move(req);
  return outcome;
}

void write_ok_prefix(std::ostream& out, const RequestId& id) {
  out << "{\"id\": ";
  write_id(out, id);
  out << ", \"ok\": true";
}

void write_error_response(std::ostream& out, const RequestId& id,
                          const std::string& error, const std::string& detail) {
  out << "{\"id\": ";
  write_id(out, id);
  out << ", \"ok\": false, \"error\": \"" << accel::json_escape(error)
      << "\", \"detail\": \"" << accel::json_escape(detail) << "\"}\n";
}

void write_pong_response(std::ostream& out, const RequestId& id) {
  write_ok_prefix(out, id);
  out << ", \"kind\": \"pong\"}\n";
}

void write_stats_object(std::ostream& out, const accel::AccelStats& stats) {
  // One schema everywhere: the multi-line write_json_fields body with its
  // newlines folded away is a valid single-line object body.
  std::ostringstream fields;
  accel::write_json_fields(fields, stats, "");
  std::string body = fields.str();
  std::string folded;
  folded.reserve(body.size());
  for (const char c : body) {
    if (c != '\n') folded.push_back(c);
  }
  out << '{' << folded << '}';
}

void write_run_response(std::ostream& out, const RequestId& id, const RunResponse& r) {
  write_ok_prefix(out, id);
  out << ", \"kind\": \"run\", \"halted\": " << (r.halted ? "true" : "false")
      << ", \"hit_budget\": " << (r.hit_budget ? "true" : "false");
  if (r.budget > 0) out << ", \"budget\": " << r.budget;
  if (r.warm_preloaded > 0) out << ", \"warm_preloaded\": " << r.warm_preloaded;
  if (r.warm_exported) out << ", \"warm_exported\": true";
  if (r.has_baseline) {
    out << ", \"transparent\": " << (r.transparent ? "true" : "false")
        << ", \"speedup\": ";
    const double speedup =
        r.accelerated.cycles == 0
            ? 0.0
            : static_cast<double>(r.baseline.cycles) /
                  static_cast<double>(r.accelerated.cycles);
    accel::write_json_double(out, speedup);
    out << ", \"baseline\": ";
    write_stats_object(out, r.baseline);
  }
  out << ", \"stats\": ";
  write_stats_object(out, r.accelerated);
  out << "}\n";
}

void write_sweep_response(std::ostream& out, const RequestId& id,
                          const std::vector<accel::SweepResult>& results) {
  write_ok_prefix(out, id);
  out << ", \"kind\": \"sweep\", \"cells\": " << results.size()
      << ", \"points\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const accel::SweepResult& r = results[i];
    out << (i == 0 ? "" : ", ") << "{\"label\": \""
        << accel::json_escape(r.label) << "\"";
    if (r.has_baseline) {
      out << ", \"speedup\": ";
      accel::write_json_double(out, r.speedup());
      out << ", \"transparent\": " << (r.transparent ? "true" : "false");
    }
    out << ", \"cycles\": " << r.accelerated.cycles << ", \"instructions\": "
        << r.accelerated.instructions << ", \"coverage\": ";
    accel::write_json_double(out, r.accelerated.array_coverage());
    out << "}";
  }
  out << "]}\n";
}

void write_fuzz_response(std::ostream& out, const RequestId& id, const FuzzResponse& r) {
  write_ok_prefix(out, id);
  out << ", \"kind\": \"fuzz\", \"seeds_run\": " << r.seeds_run
      << ", \"divergent\": " << r.divergent
      << ", \"inconclusive\": " << r.inconclusive
      << ", \"clean\": " << (r.divergent == 0 ? "true" : "false") << "}\n";
}

}  // namespace dim::serve
