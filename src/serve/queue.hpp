// Bounded MPMC admission queue: the daemon's overload valve.
//
// Admission threads try_push and, on a full queue, answer the client with
// an explicit `overloaded` rejection instead of buffering unboundedly —
// backpressure is part of the protocol, not an OOM kill. close() makes
// further pushes fail while pops drain what was already admitted, which
// is exactly the graceful-shutdown order (stop accepting, finish what was
// promised).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace dim::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // False when full or closed — never blocks.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Non-blocking variant (used to fill a batch after the blocking pop).
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dim::serve
