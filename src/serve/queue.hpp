// Bounded MPMC admission queues: the daemon's overload valve.
//
// Admission threads try_push and, on a full queue, answer the client with
// an explicit `overloaded` rejection instead of buffering unboundedly —
// backpressure is part of the protocol, not an OOM kill. close() makes
// further pushes fail while pops drain what was already admitted, which
// is exactly the graceful-shutdown order (stop accepting, finish what was
// promised).
//
// Two queues share that shape: the FIFO BoundedQueue, and AdmissionQueue,
// which schedules by request priority and deadline — strict priority
// first, earliest deadline first within a priority (EDF), and admission
// order as the final tiebreak, so pop order is a deterministic function
// of the pushed (key, order) pairs no matter how producers interleaved.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dim::serve {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // False when full or closed — never blocks.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  // Non-blocking variant (used to fill a batch after the blocking pop).
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

// The scheduling identity of one admitted request. Higher priority pops
// first; within a priority, the earliest absolute deadline pops first and
// deadline-less requests pop after every deadlined one; admission order
// breaks the remaining ties.
struct ScheduleKey {
  int priority = 0;  // protocol range [0, 9]; higher is more urgent
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
};

// Bounded MPMC priority/deadline queue. Pop order is EDF within strict
// priority; expiry itself is NOT enforced here — the dispatcher checks the
// deadline when it picks the item up and answers `deadline_expired`, so an
// expired request is rejected exactly once, with a response.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  // False when full or closed — never blocks.
  bool try_push(T item, const ScheduleKey& key) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || heap_.size() >= capacity_) return false;
      heap_.push_back(Entry{std::move(item), key, next_order_++});
      std::push_heap(heap_.begin(), heap_.end(), PopsLater{});
    }
    ready_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and empty.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return closed_ || !heap_.empty(); });
    return pop_locked(out);
  }

  // Non-blocking variant (used to fill a batch after the blocking pop).
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked(out);
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return heap_.size();
  }

 private:
  struct Entry {
    T item;
    ScheduleKey key;
    uint64_t order;  // admission sequence: the deterministic tiebreak
  };

  // std::push_heap puts the element for which the comparator is false
  // against everything else on top, so this orders "a pops later than b".
  struct PopsLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.key.priority != b.key.priority) return a.key.priority < b.key.priority;
      if (a.key.has_deadline != b.key.has_deadline) return !a.key.has_deadline;
      if (a.key.has_deadline && a.key.deadline != b.key.deadline) {
        return a.key.deadline > b.key.deadline;
      }
      return a.order > b.order;
    }
  };

  bool pop_locked(T& out) {
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), PopsLater{});
    out = std::move(heap_.back().item);
    heap_.pop_back();
    return true;
  }

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<Entry> heap_;
  uint64_t next_order_ = 0;
  bool closed_ = false;
};

}  // namespace dim::serve
