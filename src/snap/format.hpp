// On-disk container format shared by every persistence artifact: full
// system snapshots, reconfiguration-cache warm-start files, and sweep
// result-store cells. See docs/persistence.md for the byte-level layout.
//
// All three artifacts share one 20-byte header — magic, format version,
// artifact kind, payload size, payload CRC-32 — followed by a payload of
// fixed-width little-endian fields. The loader distinguishes four failure
// classes, each with its own error code, so corrupt files are diagnosable
// (and a bit-flip fuzzer can assert the loader never crashes):
//
//   kBadMagic     the file is not a dimsim persistence artifact at all
//   kBadVersion   the format version is not the one this build writes
//   kTruncated    the header or payload ends early
//   kCrcMismatch  the payload checksum does not match the header
//   kMalformed    the container is intact but a payload field is invalid
//   kMismatch     the artifact is valid but belongs to a different
//                 program / system configuration than the restore target
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace dim::snap {

// "DIMS" when the first four bytes are read as ASCII.
inline constexpr uint32_t kMagic = 0x534D4944u;

// Bumped whenever the payload layout of any artifact kind changes. The
// golden-format test (tests/test_snapshot.cpp) fails when serialized bytes
// change under an unchanged version, enforcing the bump.
inline constexpr uint16_t kFormatVersion = 2;

// Version component of every result-store cell key: bump to invalidate all
// memoized sweep cells when simulator *semantics* change without a format
// change (the cell layout itself is covered by kFormatVersion).
inline constexpr uint64_t kResultStoreCodeVersion = 1;

enum class ArtifactKind : uint16_t {
  kSnapshot = 1,   // full AcceleratedSystem state (checkpoint/resume)
  kWarmStart = 2,  // translated configurations only (rcache pre-load)
  kResultCell = 3, // one memoized SweepEngine grid cell
};

const char* artifact_kind_name(ArtifactKind kind);

enum class SnapErrc : uint8_t {
  kBadMagic,
  kBadVersion,
  kTruncated,
  kCrcMismatch,
  kMalformed,
  kMismatch,
  kIo,
};

const char* snap_errc_name(SnapErrc code);

class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapErrc code, const std::string& what)
      : std::runtime_error(std::string(snap_errc_name(code)) + ": " + what),
        code_(code) {}

  SnapErrc code() const { return code_; }

 private:
  SnapErrc code_;
};

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
uint32_t crc32(const void* data, size_t size);

}  // namespace dim::snap
