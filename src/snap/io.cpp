#include "snap/io.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <unistd.h>  // getpid: temp names must be unique across processes

namespace dim::snap {
namespace {

constexpr size_t kHeaderBytes = 20;

struct Header {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint16_t kind = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
};

std::vector<uint8_t> encode_header(const Header& h) {
  Writer w;
  w.u32(h.magic);
  w.u16(h.version);
  w.u16(h.kind);
  w.u64(h.payload_size);
  w.u32(h.crc);
  return w.take();
}

// Reads up to `n` bytes; returns the bytes actually available.
std::vector<uint8_t> read_up_to(std::istream& in, size_t n) {
  std::vector<uint8_t> buf;
  // Chunked: `n` may come from a corrupted size field, so never reserve it
  // up front — a bit-flipped 2^60 "payload size" must fail as truncation,
  // not as a bad_alloc.
  constexpr size_t kChunk = 1 << 16;
  while (buf.size() < n && in) {
    const size_t want = std::min(kChunk, n - buf.size());
    const size_t old = buf.size();
    buf.resize(old + want);
    in.read(reinterpret_cast<char*>(buf.data() + old),
            static_cast<std::streamsize>(want));
    buf.resize(old + static_cast<size_t>(in.gcount()));
    if (static_cast<size_t>(in.gcount()) < want) break;
  }
  return buf;
}

std::vector<uint8_t> read_validated(std::istream& in, ArtifactKind* kind_out,
                                    const ArtifactKind* expected_kind) {
  const std::vector<uint8_t> raw_header = read_up_to(in, kHeaderBytes);
  if (raw_header.size() < 4) {
    throw SnapshotError(SnapErrc::kTruncated,
                        "file shorter than the 4-byte magic");
  }
  Reader hr(raw_header);
  Header h;
  h.magic = hr.u32();
  if (h.magic != kMagic) {
    throw SnapshotError(SnapErrc::kBadMagic, "not a dimsim persistence artifact");
  }
  if (raw_header.size() < kHeaderBytes) {
    throw SnapshotError(SnapErrc::kTruncated, "header ends early");
  }
  h.version = hr.u16();
  if (h.version != kFormatVersion) {
    throw SnapshotError(SnapErrc::kBadVersion,
                        "format v" + std::to_string(h.version) + ", this build reads v" +
                            std::to_string(kFormatVersion));
  }
  h.kind = hr.u16();
  if (h.kind < 1 || h.kind > 3) {
    throw SnapshotError(SnapErrc::kMalformed,
                        "unknown artifact kind " + std::to_string(h.kind));
  }
  const ArtifactKind kind = static_cast<ArtifactKind>(h.kind);
  if (expected_kind != nullptr && kind != *expected_kind) {
    throw SnapshotError(SnapErrc::kMismatch,
                        std::string("expected a ") + artifact_kind_name(*expected_kind) +
                            ", found a " + artifact_kind_name(kind));
  }
  if (kind_out != nullptr) *kind_out = kind;
  h.payload_size = hr.u64();
  h.crc = hr.u32();

  std::vector<uint8_t> payload = read_up_to(in, h.payload_size);
  if (payload.size() < h.payload_size) {
    throw SnapshotError(SnapErrc::kTruncated,
                        "payload has " + std::to_string(payload.size()) + " of " +
                            std::to_string(h.payload_size) + " bytes");
  }
  if (crc32(payload.data(), payload.size()) != h.crc) {
    throw SnapshotError(SnapErrc::kCrcMismatch, "payload CRC-32 differs");
  }
  return payload;
}

}  // namespace

void write_container(std::ostream& out, ArtifactKind kind,
                     const std::vector<uint8_t>& payload) {
  Header h;
  h.magic = kMagic;
  h.version = kFormatVersion;
  h.kind = static_cast<uint16_t>(kind);
  h.payload_size = payload.size();
  h.crc = crc32(payload.data(), payload.size());
  const std::vector<uint8_t> header = encode_header(h);
  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) throw SnapshotError(SnapErrc::kIo, "write failed");
}

std::vector<uint8_t> read_container(std::istream& in, ArtifactKind expected_kind) {
  return read_validated(in, nullptr, &expected_kind);
}

std::vector<uint8_t> read_container(std::istream& in, ArtifactKind* kind_out) {
  return read_validated(in, kind_out, nullptr);
}

void write_artifact_file(const std::string& path, ArtifactKind kind,
                         const std::vector<uint8_t>& payload) {
  // Unique temp name per writer so concurrent stores to the same key never
  // interleave inside one temp file; rename() then publishes atomically.
  // The pid is part of the name because a counter alone is only unique
  // within one process — two processes (e.g. daemon workers sharing a
  // result-store directory) both start their counters at 0 and would open
  // the same temp file, publishing a torn mix of both payloads.
  static std::atomic<uint64_t> sequence{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<uint64_t>(getpid())) + "." +
                          std::to_string(sequence.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SnapshotError(SnapErrc::kIo, "cannot create " + tmp);
    write_container(out, kind, payload);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw SnapshotError(SnapErrc::kIo, "cannot rename into " + path);
  }
}

std::vector<uint8_t> read_artifact_file(const std::string& path,
                                        ArtifactKind expected_kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError(SnapErrc::kIo, "cannot open " + path);
  return read_container(in, expected_kind);
}

std::vector<uint8_t> read_artifact_file(const std::string& path,
                                        ArtifactKind* kind_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError(SnapErrc::kIo, "cannot open " + path);
  return read_container(in, kind_out);
}

}  // namespace dim::snap
