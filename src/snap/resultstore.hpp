// Content-addressed result store: on-disk memoization of SweepEngine
// cells. Each cell is keyed by everything that determines the simulated
// outcome — program image hash, full system fingerprint, whether a
// baseline run is part of the cell, whether a profile is collected, and a
// code version bumped whenever the simulator's behavior changes — so a hit
// can only ever return the bytes the simulation would recompute. Sweep
// output is byte-identical with the store enabled, disabled, or shared
// across runs and thread counts; a warm store just does zero simulations.
//
// Cells are written atomically (temp file + rename) so concurrent sweeps
// can share a directory; a corrupt or truncated cell is counted and
// treated as a miss, never an error.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "accel/sweep.hpp"

namespace dim::snap {

class ResultStore : public accel::ResultCache {
 public:
  // Creates `directory` (and parents) if needed; throws
  // SnapshotError(kIo) when that fails.
  explicit ResultStore(std::string directory);

  bool load(const accel::SweepPoint& point, bool collect_profiles,
            accel::SweepResult& out) override;
  void store(const accel::SweepPoint& point, bool collect_profiles,
             const accel::SweepResult& result) override;

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;
    uint64_t corrupt_discards = 0;  // unreadable/mismatched cells skipped
  };
  Counters counters() const;

  // The cell identity of a point. Label and index are presentation fields
  // and excluded; a live `point.baseline` pointer is excluded too (the
  // caller supplies it again on load — only a worker-computed baseline is
  // part of the cell).
  static uint64_t cell_key(const accel::SweepPoint& point, bool collect_profiles);

  std::string cell_path(uint64_t key) const;
  const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
  mutable std::mutex mutex_;
  Counters counters_;
};

}  // namespace dim::snap
