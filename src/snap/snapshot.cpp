#include "snap/snapshot.hpp"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "mem/memory.hpp"
#include "snap/codec.hpp"
#include "snap/io.hpp"
#include "snap/system_access.hpp"

namespace dim::snap {
namespace {

// Payload layout: sections with u16 markers in this fixed order. The
// markers buy cheap integrity (a mis-length section fails at the next
// marker, not twenty fields later) and keep the dump tool honest.
constexpr uint16_t kSecMeta = 1;    // program hash + system fingerprint
constexpr uint16_t kSecCpu = 2;     // architectural registers + output
constexpr uint16_t kSecMem = 3;     // sparse pages, ascending
constexpr uint16_t kSecPipe = 4;    // pipeline latches + I/D cache models
constexpr uint16_t kSecPred = 5;    // bimodal counters, ascending by PC
constexpr uint16_t kSecRcache = 6;  // counters + entries oldest-first
constexpr uint16_t kSecXlate = 7;   // translator stats + in-flight capture
constexpr uint16_t kSecStats = 8;   // accumulated AccelStats
constexpr uint16_t kSecSys = 9;     // extension latch + array cycle acc
// Optional trailing section, present ONLY when a non-row-sync execution
// personality is active (SystemConfig::exec_mode): the SIMT warp fill and
// the execution-mode stats counters. Row-sync snapshots omit it and keep
// their exact pre-mode bytes (pinned by the committed format goldens);
// readers default the fields to zero when the section is absent.
constexpr uint16_t kSecExec = 10;   // warp latch fill + exec-mode counters

void expect_section(Reader& r, uint16_t id) {
  const uint16_t got = r.u16();
  if (got != id) {
    r.fail("expected section " + std::to_string(id) + ", found " +
           std::to_string(got));
  }
}

void put_cache_state(Writer& w, const mem::CacheState& c) {
  w.u64(c.tags.size());
  for (uint64_t t : c.tags) w.u64(t);
  w.u64(c.hits);
  w.u64(c.misses);
}

mem::CacheState get_cache_state(Reader& r) {
  mem::CacheState c;
  const uint64_t n = r.u64();
  r.expect_count(n, 8);
  c.tags.reserve(n);
  for (uint64_t i = 0; i < n; ++i) c.tags.push_back(r.u64());
  c.hits = r.u64();
  c.misses = r.u64();
  return c;
}

void put_builder(Writer& w, const bt::BuilderState& b) {
  w.u32(b.start_pc);
  w.u64(b.ops.size());
  for (const rra::ArrayOp& op : b.ops) put_array_op(w, op);
  w.u64(b.rows.size());
  for (const std::array<int, 3>& row : b.rows) {
    w.i32(row[0]);
    w.i32(row[1]);
    w.i32(row[2]);
  }
  for (int v : b.last_writer_row) w.i32(v);
  w.u64(b.input_ctx_bits);
  w.u64(b.written_bits);
  w.i32(b.last_mem_row);
  w.i32(b.last_store_row);
  w.i32(b.bb);
  w.i32(b.immediates);
  w.i32(b.pred_slots);
}

bt::BuilderState get_builder(Reader& r) {
  bt::BuilderState b;
  b.start_pc = r.u32();
  const uint64_t nops = r.u64();
  r.expect_count(nops, 35);  // serialized ArrayOp size
  b.ops.reserve(nops);
  for (uint64_t i = 0; i < nops; ++i) b.ops.push_back(get_array_op(r));
  const uint64_t nrows = r.u64();
  r.expect_count(nrows, 12);
  b.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    b.rows.push_back({r.i32(), r.i32(), r.i32()});
  }
  for (int& v : b.last_writer_row) v = r.i32();
  b.input_ctx_bits = r.u64();
  b.written_bits = r.u64();
  b.last_mem_row = r.i32();
  b.last_store_row = r.i32();
  b.bb = r.i32();
  b.immediates = r.i32();
  b.pred_slots = r.i32();
  if (b.bb < 0 || b.immediates < 0 || b.pred_slots < 0) {
    r.fail("negative builder counter");
  }
  return b;
}

// Fully parsed snapshot, staged before any system mutation so a malformed
// payload is (mostly) rejected without touching the target.
struct SnapshotData {
  uint64_t program_hash = 0;
  uint64_t system_fingerprint = 0;
  sim::CpuState cpu;
  std::vector<std::pair<uint32_t, std::vector<uint8_t>>> pages;
  sim::PipelineState pipe;
  std::vector<std::pair<uint32_t, uint8_t>> predictor;
  bt::RcacheCounters rcache_counters;
  std::vector<rra::Configuration> rcache_entries;
  bt::TranslatorState xlate;
  accel::AccelStats stats;
  bool extension_candidate = false;
  uint32_t extension_config_pc = 0;
  uint32_t extension_branch_pc = 0;
  uint64_t array_cycle_acc = 0;
  bool has_resident = false;
  uint32_t resident_pc = 0;
  uint64_t resident_rev = 0;
  uint32_t resident_lo = 0;
  uint32_t resident_hi = 0;
  // kSecExec (optional; explicit zero defaults when the section is absent).
  uint32_t warp_fill = 0;
};

SnapshotData parse_snapshot(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  SnapshotData d;

  expect_section(r, kSecMeta);
  d.program_hash = r.u64();
  d.system_fingerprint = r.u64();

  expect_section(r, kSecCpu);
  d.cpu = get_cpu(r);

  expect_section(r, kSecMem);
  const uint64_t npages = r.u64();
  r.expect_count(npages, 4 + mem::Memory::kPageSize);
  d.pages.reserve(npages);
  for (uint64_t i = 0; i < npages; ++i) {
    const uint32_t index = r.u32();
    std::vector<uint8_t> bytes(mem::Memory::kPageSize);
    r.raw(bytes.data(), bytes.size());
    if (i > 0 && index <= d.pages.back().first) {
      r.fail("memory pages not ascending");
    }
    d.pages.emplace_back(index, std::move(bytes));
  }

  expect_section(r, kSecPipe);
  d.pipe.cycles = r.u64();
  d.pipe.pending_load_reg = r.i32();
  d.pipe.hilo_ready = r.u64();
  d.pipe.slot_open = r.boolean();
  d.pipe.slot_dest = r.i32();
  d.pipe.slot_mem = r.boolean();
  d.pipe.slot_hilo = r.boolean();
  d.pipe.icache = get_cache_state(r);
  d.pipe.dcache = get_cache_state(r);

  expect_section(r, kSecPred);
  const uint64_t nbranches = r.u64();
  r.expect_count(nbranches, 5);
  d.predictor.reserve(nbranches);
  for (uint64_t i = 0; i < nbranches; ++i) {
    const uint32_t pc = r.u32();
    const uint8_t counter = r.u8();
    if (counter > 3) r.fail("bimodal counter " + std::to_string(counter));
    if (i > 0 && pc <= d.predictor.back().first) {
      r.fail("predictor counters not ascending");
    }
    d.predictor.emplace_back(pc, counter);
  }

  expect_section(r, kSecRcache);
  d.rcache_counters.hits = r.u64();
  d.rcache_counters.misses = r.u64();
  d.rcache_counters.insertions = r.u64();
  d.rcache_counters.evictions = r.u64();
  d.rcache_counters.flushes = r.u64();
  d.rcache_counters.words_written = r.u64();
  d.rcache_counters.revision_counter = r.u64();
  const uint64_t nentries = r.u64();
  r.expect_count(nentries, 50);  // minimum serialized Configuration size
  d.rcache_entries.reserve(nentries);
  for (uint64_t i = 0; i < nentries; ++i) {
    d.rcache_entries.push_back(get_configuration(r));
  }

  expect_section(r, kSecXlate);
  d.xlate.stats.captures_started = r.u64();
  d.xlate.stats.configs_inserted = r.u64();
  d.xlate.stats.captures_aborted = r.u64();
  d.xlate.stats.too_short = r.u64();
  d.xlate.stats.extensions_completed = r.u64();
  d.xlate.stats.observed_instructions = r.u64();
  d.xlate.stats.hammocks_merged = r.u64();
  d.xlate.stats.hammock_rejects = r.u64();
  d.xlate.start_pending = r.boolean();
  d.xlate.extending = r.boolean();
  d.xlate.skipping = r.boolean();
  d.xlate.skip_lo = r.u32();
  d.xlate.skip_until = r.u32();
  if (r.boolean()) d.xlate.builder = get_builder(r);
  if (d.xlate.extending && !d.xlate.builder.has_value()) {
    r.fail("extension flagged without an in-flight capture");
  }
  if (d.xlate.skipping && !d.xlate.builder.has_value()) {
    r.fail("hammock skip window without an in-flight capture");
  }

  expect_section(r, kSecStats);
  d.stats = get_stats(r);

  expect_section(r, kSecSys);
  d.extension_candidate = r.boolean();
  d.extension_config_pc = r.u32();
  d.extension_branch_pc = r.u32();
  d.array_cycle_acc = r.u64();
  d.has_resident = r.boolean();
  d.resident_pc = r.u32();
  d.resident_rev = r.u64();
  d.resident_lo = r.u32();
  d.resident_hi = r.u32();
  if (d.has_resident && d.resident_lo >= d.resident_hi) {
    r.fail("empty resident code range");
  }

  if (!r.done()) {
    expect_section(r, kSecExec);
    d.warp_fill = r.u32();
    get_exec_stats(r, d.stats);
  }

  if (!r.done()) r.fail("trailing bytes after final section");
  return d;
}

}  // namespace

std::vector<uint8_t> encode_snapshot(const accel::AcceleratedSystem& system,
                                     const asmblr::Program& program) {
  Writer w;

  w.u16(kSecMeta);
  w.u64(program_hash(program));
  w.u64(system_fingerprint(SystemAccess::config(system)));

  w.u16(kSecCpu);
  put_cpu(w, SystemAccess::state(system));

  w.u16(kSecMem);
  const auto pages = SystemAccess::memory(system).pages_sorted();
  w.u64(pages.size());
  for (const auto& [index, bytes] : pages) {
    w.u32(index);
    w.raw(bytes->data(), bytes->size());
  }

  w.u16(kSecPipe);
  const sim::PipelineState pipe = SystemAccess::pipeline(system).export_state();
  w.u64(pipe.cycles);
  w.i32(pipe.pending_load_reg);
  w.u64(pipe.hilo_ready);
  w.boolean(pipe.slot_open);
  w.i32(pipe.slot_dest);
  w.boolean(pipe.slot_mem);
  w.boolean(pipe.slot_hilo);
  put_cache_state(w, pipe.icache);
  put_cache_state(w, pipe.dcache);

  w.u16(kSecPred);
  const auto counters = SystemAccess::predictor(system).export_counters();
  w.u64(counters.size());
  for (const auto& [pc, counter] : counters) {
    w.u32(pc);
    w.u8(counter);
  }

  w.u16(kSecRcache);
  const bt::RcacheCounters rc = SystemAccess::rcache(system).counters();
  w.u64(rc.hits);
  w.u64(rc.misses);
  w.u64(rc.insertions);
  w.u64(rc.evictions);
  w.u64(rc.flushes);
  w.u64(rc.words_written);
  w.u64(rc.revision_counter);
  const auto entries = SystemAccess::rcache(system).export_entries();
  w.u64(entries.size());
  for (const rra::Configuration& config : entries) put_configuration(w, config);

  w.u16(kSecXlate);
  const bt::TranslatorState xlate = SystemAccess::translator(system).export_state();
  w.u64(xlate.stats.captures_started);
  w.u64(xlate.stats.configs_inserted);
  w.u64(xlate.stats.captures_aborted);
  w.u64(xlate.stats.too_short);
  w.u64(xlate.stats.extensions_completed);
  w.u64(xlate.stats.observed_instructions);
  w.u64(xlate.stats.hammocks_merged);
  w.u64(xlate.stats.hammock_rejects);
  w.boolean(xlate.start_pending);
  w.boolean(xlate.extending);
  w.boolean(xlate.skipping);
  w.u32(xlate.skip_lo);
  w.u32(xlate.skip_until);
  w.boolean(xlate.builder.has_value());
  if (xlate.builder.has_value()) put_builder(w, *xlate.builder);

  w.u16(kSecStats);
  put_stats(w, SystemAccess::stats(system));

  w.u16(kSecSys);
  w.boolean(SystemAccess::extension_candidate(system));
  w.u32(SystemAccess::extension_config_pc(system));
  w.u32(SystemAccess::extension_branch_pc(system));
  w.u64(SystemAccess::array_cycle_acc(system));
  w.boolean(SystemAccess::has_resident(system));
  w.u32(SystemAccess::resident_pc(system));
  w.u64(SystemAccess::resident_rev(system));
  w.u32(SystemAccess::resident_lo(system));
  w.u32(SystemAccess::resident_hi(system));

  if (SystemAccess::config(system).exec_mode.mode != rra::ExecMode::kRowSync) {
    w.u16(kSecExec);
    w.u32(SystemAccess::warp_fill(system));
    put_exec_stats(w, SystemAccess::stats(system));
  }

  return w.take();
}

void save_snapshot(std::ostream& out, const accel::AcceleratedSystem& system,
                   const asmblr::Program& program) {
  write_container(out, ArtifactKind::kSnapshot, encode_snapshot(system, program));
}

void save_snapshot_file(const std::string& path,
                        const accel::AcceleratedSystem& system,
                        const asmblr::Program& program) {
  write_artifact_file(path, ArtifactKind::kSnapshot,
                      encode_snapshot(system, program));
}

void restore_snapshot_payload(accel::AcceleratedSystem& system,
                              const std::vector<uint8_t>& payload,
                              const asmblr::Program& program) {
  SnapshotData d = parse_snapshot(payload);

  // Identity checks before any mutation: a snapshot only restores into a
  // system that would have produced it.
  if (d.program_hash != program_hash(program)) {
    throw SnapshotError(SnapErrc::kMismatch,
                        "snapshot was taken from a different program image");
  }
  if (d.system_fingerprint != system_fingerprint(SystemAccess::config(system))) {
    throw SnapshotError(SnapErrc::kMismatch,
                        "snapshot was taken under a different system configuration");
  }

  try {
    SystemAccess::memory(system).restore_pages(d.pages);
    SystemAccess::state(system) = d.cpu;
    SystemAccess::pipeline(system).restore_state(d.pipe);
    SystemAccess::predictor(system).restore_counters(d.predictor);
    SystemAccess::rcache(system).restore(std::move(d.rcache_entries),
                                         d.rcache_counters);
    SystemAccess::translator(system).restore_state(d.xlate);
  } catch (const std::invalid_argument& e) {
    // Component-level rejections (cache geometry, slot overflow, duplicate
    // PCs) are payload corruption by this point — the fingerprint already
    // matched, so a well-formed snapshot cannot trip them.
    throw SnapshotError(SnapErrc::kMalformed, e.what());
  }
  SystemAccess::stats(system) = d.stats;
  SystemAccess::set_extension(system, d.extension_candidate,
                              d.extension_config_pc, d.extension_branch_pc);
  SystemAccess::set_array_cycle_acc(system, d.array_cycle_acc);
  SystemAccess::set_residency_latch(system, d.has_resident, d.resident_pc,
                                    d.resident_rev, d.resident_lo, d.resident_hi);
  SystemAccess::set_warp_fill(system, d.warp_fill);
  // restore_pages invalidated every page pointer and replaced the image;
  // drop all host-side decoded state (decode cache, superblock traces).
  SystemAccess::clear_host_caches(system);
}

void restore_snapshot(accel::AcceleratedSystem& system, std::istream& in,
                      const asmblr::Program& program) {
  restore_snapshot_payload(system, read_container(in, ArtifactKind::kSnapshot),
                           program);
}

void restore_snapshot_file(accel::AcceleratedSystem& system,
                           const std::string& path,
                           const asmblr::Program& program) {
  restore_snapshot_payload(
      system, read_artifact_file(path, ArtifactKind::kSnapshot), program);
}

SnapshotInfo inspect_snapshot(const std::vector<uint8_t>& payload) {
  SnapshotData d = parse_snapshot(payload);
  SnapshotInfo info;
  info.program_hash = d.program_hash;
  info.system_fingerprint = d.system_fingerprint;
  info.cpu = d.cpu;
  info.memory_pages = d.pages.size();
  info.pipeline_cycles = d.pipe.cycles;
  info.predictor_branches = d.predictor.size();
  for (const auto& [pc, counter] : d.predictor) {
    if (counter == 0 || counter == 3) ++info.predictor_saturated;
  }
  info.rcache_counters = d.rcache_counters;
  info.rcache_entries.reserve(d.rcache_entries.size());
  for (const rra::Configuration& config : d.rcache_entries) {
    SnapshotRcacheEntry e;
    e.start_pc = config.start_pc;
    e.end_pc = config.end_pc;
    e.rows_used = config.rows_used;
    e.ops = static_cast<int>(config.ops.size());
    e.num_bbs = config.num_bbs;
    info.rcache_entries.push_back(e);
  }
  info.translator_stats = d.xlate.stats;
  info.capture_in_flight = d.xlate.builder.has_value();
  if (d.xlate.builder.has_value()) {
    info.capture_pc = d.xlate.builder->start_pc;
    info.capture_ops = static_cast<int>(d.xlate.builder->ops.size());
  }
  info.stats = d.stats;
  return info;
}

SnapshotInfo inspect_snapshot_file(const std::string& path) {
  return inspect_snapshot(read_artifact_file(path, ArtifactKind::kSnapshot));
}

}  // namespace dim::snap
