// Bounds-checked binary writer/reader for persistence payloads, plus the
// container framing (header + CRC) and atomic file helpers.
//
// Every multi-byte integer is little-endian with a fixed width, written
// byte-by-byte — the encoded stream is identical on any host. The Reader
// throws SnapshotError(kMalformed) on any out-of-bounds access, so a
// fuzzed payload can never index past the buffer; element counts must be
// validated against the remaining byte budget (`expect_count`) before any
// allocation, so a corrupted count cannot trigger a huge allocation.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "snap/format.hpp"

namespace dim::snap {

class Writer {
 public:
  void u8(uint8_t v) { bytes_.push_back(v); }
  void u16(uint16_t v) {
    u8(static_cast<uint8_t>(v));
    u8(static_cast<uint8_t>(v >> 8));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v));
    u16(static_cast<uint16_t>(v >> 16));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v));
    u32(static_cast<uint32_t>(v >> 32));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  void raw(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& bytes)
      : Reader(bytes.data(), bytes.size()) {}

  uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  uint16_t u16() {
    const uint16_t lo = u8();
    return static_cast<uint16_t>(lo | (static_cast<uint16_t>(u8()) << 8));
  }
  uint32_t u32() {
    const uint32_t lo = u16();
    return lo | (static_cast<uint32_t>(u16()) << 16);
  }
  uint64_t u64() {
    const uint64_t lo = u32();
    return lo | (static_cast<uint64_t>(u32()) << 32);
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  bool boolean() {
    const uint8_t v = u8();
    if (v > 1) fail("boolean field is " + std::to_string(v));
    return v != 0;
  }
  std::string str() {
    const uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void raw(void* out, size_t size) {
    need(size);
    std::copy(data_ + pos_, data_ + pos_ + size, static_cast<uint8_t*>(out));
    pos_ += size;
  }

  // Validates a deserialized element count against the bytes actually left:
  // `count` elements of at least `min_elem_bytes` each must fit. Call
  // before reserving/resizing any container sized by untrusted input.
  void expect_count(uint64_t count, size_t min_elem_bytes) const {
    if (min_elem_bytes == 0 || count > remaining() / min_elem_bytes) {
      fail("element count " + std::to_string(count) +
           " exceeds remaining payload");
    }
  }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw SnapshotError(SnapErrc::kMalformed,
                        what + " (offset " + std::to_string(pos_) + ")");
  }

 private:
  void need(uint64_t n) {
    if (n > remaining()) fail("read past end of payload");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Writes header (magic, version, kind, payload size, payload CRC-32) then
// the payload.
void write_container(std::ostream& out, ArtifactKind kind,
                     const std::vector<uint8_t>& payload);

// Reads and validates one container. Throws SnapshotError with the precise
// failure class: kBadMagic / kBadVersion / kTruncated / kCrcMismatch, or
// kMismatch when the artifact kind differs from `expected_kind` (pass
// nullptr to accept any kind and receive the one found).
std::vector<uint8_t> read_container(std::istream& in, ArtifactKind expected_kind);
std::vector<uint8_t> read_container(std::istream& in, ArtifactKind* kind_out);

// Writes `kind` + `payload` to `path` atomically: the bytes go to a
// temporary file in the same directory which is then renamed over the
// target, so a concurrent reader sees either the old artifact or the new
// one, never a torn write. Throws SnapshotError(kIo) on failure.
void write_artifact_file(const std::string& path, ArtifactKind kind,
                         const std::vector<uint8_t>& payload);

// Opens and validates an artifact file. Throws SnapshotError (kIo if the
// file cannot be opened, otherwise the container failure class).
std::vector<uint8_t> read_artifact_file(const std::string& path,
                                        ArtifactKind expected_kind);
std::vector<uint8_t> read_artifact_file(const std::string& path,
                                        ArtifactKind* kind_out);

}  // namespace dim::snap
