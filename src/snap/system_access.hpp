// Internal to src/snap: the one gate through AcceleratedSystem's private
// state (friended in accel/system.hpp). Serialization code reads and
// writes the system exclusively through these accessors so the coupling
// surface stays explicit and greppable. Not part of the public snap API.
#pragma once

#include <cstdint>

#include "accel/stats.hpp"
#include "accel/system.hpp"
#include "bt/predictor.hpp"
#include "bt/rcache.hpp"
#include "bt/translator.hpp"
#include "mem/memory.hpp"
#include "sim/cpu_state.hpp"
#include "sim/pipeline.hpp"

namespace dim::snap {

struct SystemAccess {
  static const accel::SystemConfig& config(const accel::AcceleratedSystem& s) {
    return s.config_;
  }
  static const mem::Memory& memory(const accel::AcceleratedSystem& s) {
    return s.memory_;
  }
  static mem::Memory& memory(accel::AcceleratedSystem& s) { return s.memory_; }
  static const sim::CpuState& state(const accel::AcceleratedSystem& s) {
    return s.state_;
  }
  static sim::CpuState& state(accel::AcceleratedSystem& s) { return s.state_; }
  static const sim::PipelineModel& pipeline(const accel::AcceleratedSystem& s) {
    return s.pipeline_;
  }
  static sim::PipelineModel& pipeline(accel::AcceleratedSystem& s) {
    return s.pipeline_;
  }
  static const bt::BimodalPredictor& predictor(const accel::AcceleratedSystem& s) {
    return s.predictor_;
  }
  static bt::BimodalPredictor& predictor(accel::AcceleratedSystem& s) {
    return s.predictor_;
  }
  static const bt::ReconfigCache& rcache(const accel::AcceleratedSystem& s) {
    return *s.rcache_;
  }
  static bt::ReconfigCache& rcache(accel::AcceleratedSystem& s) {
    return *s.rcache_;
  }
  static const bt::Translator& translator(const accel::AcceleratedSystem& s) {
    return *s.translator_;
  }
  static bt::Translator& translator(accel::AcceleratedSystem& s) {
    return *s.translator_;
  }
  static const accel::AccelStats& stats(const accel::AcceleratedSystem& s) {
    return s.stats_;
  }
  static accel::AccelStats& stats(accel::AcceleratedSystem& s) { return s.stats_; }

  static void set_extension(accel::AcceleratedSystem& s, bool candidate,
                            uint32_t config_pc, uint32_t branch_pc) {
    s.extension_candidate_ = candidate;
    s.extension_config_pc_ = config_pc;
    s.extension_branch_pc_ = branch_pc;
  }
  static bool extension_candidate(const accel::AcceleratedSystem& s) {
    return s.extension_candidate_;
  }
  static uint32_t extension_config_pc(const accel::AcceleratedSystem& s) {
    return s.extension_config_pc_;
  }
  static uint32_t extension_branch_pc(const accel::AcceleratedSystem& s) {
    return s.extension_branch_pc_;
  }
  static uint64_t array_cycle_acc(const accel::AcceleratedSystem& s) {
    return s.array_cycle_acc_;
  }
  static void set_array_cycle_acc(accel::AcceleratedSystem& s, uint64_t v) {
    s.array_cycle_acc_ = v;
  }

  static bool has_resident(const accel::AcceleratedSystem& s) {
    return s.has_resident_;
  }
  static uint32_t resident_pc(const accel::AcceleratedSystem& s) {
    return s.resident_pc_;
  }
  static uint64_t resident_rev(const accel::AcceleratedSystem& s) {
    return s.resident_rev_;
  }
  static uint32_t resident_lo(const accel::AcceleratedSystem& s) {
    return s.resident_lo_;
  }
  static uint32_t resident_hi(const accel::AcceleratedSystem& s) {
    return s.resident_hi_;
  }
  static void set_residency_latch(accel::AcceleratedSystem& s, bool has,
                                  uint32_t pc, uint64_t rev, uint32_t lo,
                                  uint32_t hi) {
    s.has_resident_ = has;
    s.resident_pc_ = pc;
    s.resident_rev_ = rev;
    s.resident_lo_ = lo;
    s.resident_hi_ = hi;
  }

  static uint32_t warp_fill(const accel::AcceleratedSystem& s) {
    return s.warp_fill_;
  }
  static void set_warp_fill(accel::AcceleratedSystem& s, uint32_t v) {
    s.warp_fill_ = v;
  }

  // Restoring replaces the memory image wholesale (restore_pages
  // invalidates page pointers) — both host-side caches must forget
  // everything they decoded from the old image. Architecture-invisible:
  // they rebuild lazily and revalidate against memory, but the trace
  // cache's cached page pointer would dangle without this.
  static void clear_host_caches(accel::AcceleratedSystem& s) {
    s.decode_cache_.clear();
    s.trace_cache_.clear();
  }
};

}  // namespace dim::snap
