// Rcache warm-start files: the translated configurations sitting in the
// reconfiguration cache at the end of a run, exported keyed by program
// hash + translation fingerprint. A second run of the same program under
// the same translation knobs preloads them and starts hot — the detection
// phase is skipped for every preloaded sequence, which is where DIM's
// first-iteration translation cost goes (bench_warmstart pins the cycle
// savings).
//
// Loading is transparent by construction: preloaded entries are exactly
// what the cold run would (re-)translate, and preloading is silent — no
// events, no counter accounting — so the warm run's statistics measure
// only what the run itself does. Cold and warm runs retire the same
// instruction stream to the same architectural state; they differ only in
// translation-phase counters and cycles (see tests/test_warmstart.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "accel/system.hpp"
#include "asm/program.hpp"
#include "snap/snapshot.hpp"

namespace dim::snap {

// Exports every configuration currently cached by `system` (oldest first).
std::vector<uint8_t> encode_warm_start(const accel::AcceleratedSystem& system,
                                       const asmblr::Program& program);
void save_warm_start(std::ostream& out, const accel::AcceleratedSystem& system,
                     const asmblr::Program& program);
void save_warm_start_file(const std::string& path,
                          const accel::AcceleratedSystem& system,
                          const asmblr::Program& program);

// Preloads the file's configurations into `system`'s reconfiguration
// cache. The system must run the same program image under the same
// translation fingerprint (shape, speculation, translator restrictions) —
// SnapshotError(kMismatch) otherwise; the cache geometry may differ.
// Returns the number of configurations actually preloaded: loading never
// evicts, so a smaller cache takes entries oldest-first until full, and
// already-present start PCs are skipped.
size_t load_warm_start_payload(accel::AcceleratedSystem& system,
                               const std::vector<uint8_t>& payload,
                               const asmblr::Program& program);
size_t load_warm_start(accel::AcceleratedSystem& system, std::istream& in,
                       const asmblr::Program& program);
size_t load_warm_start_file(accel::AcceleratedSystem& system,
                            const std::string& path,
                            const asmblr::Program& program);

struct WarmStartInfo {
  uint64_t program_hash = 0;
  uint64_t translation_fingerprint = 0;
  std::vector<SnapshotRcacheEntry> entries;  // oldest first
};

WarmStartInfo inspect_warm_start(const std::vector<uint8_t>& payload);
WarmStartInfo inspect_warm_start_file(const std::string& path);

}  // namespace dim::snap
