#include "snap/resultstore.hpp"

#include <filesystem>
#include <system_error>
#include <utility>

#include "snap/codec.hpp"
#include "snap/io.hpp"

namespace dim::snap {
namespace {

// True when the cell itself must contain a baseline: the worker would have
// computed one. A live point.baseline pointer is NOT part of the cell —
// the caller re-supplies it on every load.
bool wants_worker_baseline(const accel::SweepPoint& point) {
  return point.baseline == nullptr && point.run_baseline;
}

struct CellData {
  uint64_t key = 0;
  accel::AccelStats accelerated;
  bool has_baseline = false;
  accel::AccelStats baseline;
  bool transparent = true;
  bool has_profile = false;
  obs::ProfileTable profile;
};

CellData parse_cell(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  CellData d;
  d.key = r.u64();
  d.accelerated = get_stats(r);
  d.has_baseline = r.boolean();
  if (d.has_baseline) d.baseline = get_stats(r);
  d.transparent = r.boolean();
  d.has_profile = r.boolean();
  if (d.has_profile) d.profile = get_profile(r);
  // Optional execution-mode counter block (accelerated stats only; a
  // baseline run never touches the array). Written only when some counter
  // is nonzero, so row-sync cells — including every cell from before the
  // mode axis existed — keep their exact bytes; absent means all zero.
  if (!r.done()) get_exec_stats(r, d.accelerated);
  if (!r.done()) r.fail("trailing bytes after cell fields");
  return d;
}

}  // namespace

ResultStore::ResultStore(std::string directory) : directory_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(directory_, ec);
  if (ec) {
    throw SnapshotError(SnapErrc::kIo, "cannot create result store directory " +
                                           directory_ + ": " + ec.message());
  }
}

uint64_t ResultStore::cell_key(const accel::SweepPoint& point,
                               bool collect_profiles) {
  Writer w;
  w.u64(kResultStoreCodeVersion);
  w.u64(program_hash(*point.program));
  w.u64(system_fingerprint(point.config));
  w.boolean(wants_worker_baseline(point));
  w.boolean(collect_profiles);
  return fnv1a64(w.bytes());
}

std::string ResultStore::cell_path(uint64_t key) const {
  static const char* hex = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 15; i >= 0; --i) {
    name[static_cast<size_t>(i)] = hex[key & 0xf];
    key >>= 4;
  }
  return directory_ + "/" + name + ".cell";
}

bool ResultStore::load(const accel::SweepPoint& point, bool collect_profiles,
                       accel::SweepResult& out) {
  const uint64_t key = cell_key(point, collect_profiles);
  const std::string path = cell_path(key);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
    return false;
  }
  CellData cell;
  try {
    cell = parse_cell(read_artifact_file(path, ArtifactKind::kResultCell));
    if (cell.key != key) {
      throw SnapshotError(SnapErrc::kMismatch, "cell key disagrees with filename");
    }
  } catch (const SnapshotError&) {
    // Any unreadable cell — torn write from a crashed sweep, bit rot, a
    // colliding foreign file — is a miss, never an error: the worker just
    // recomputes (and store() rewrites the cell atomically).
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.corrupt_discards;
    ++counters_.misses;
    return false;
  }

  out.accelerated = cell.accelerated;
  out.has_baseline = cell.has_baseline;
  out.baseline = cell.baseline;
  out.transparent = cell.transparent;
  out.has_profile = cell.has_profile;
  out.profile = std::move(cell.profile);
  if (point.baseline != nullptr) {
    // Live baseline: re-attach it and re-derive the transparency verdict,
    // exactly as the worker would have.
    out.baseline = *point.baseline;
    out.has_baseline = true;
    out.transparent =
        out.accelerated.final_state.output == out.baseline.final_state.output &&
        out.accelerated.memory_hash == out.baseline.memory_hash;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits;
  return true;
}

void ResultStore::store(const accel::SweepPoint& point, bool collect_profiles,
                        const accel::SweepResult& result) {
  const uint64_t key = cell_key(point, collect_profiles);
  Writer w;
  w.u64(key);
  put_stats(w, result.accelerated);
  const bool store_baseline = wants_worker_baseline(point);
  w.boolean(store_baseline);
  if (store_baseline) put_stats(w, result.baseline);
  w.boolean(result.transparent);
  w.boolean(result.has_profile);
  if (result.has_profile) put_profile(w, result.profile);
  if (has_exec_stats(result.accelerated)) put_exec_stats(w, result.accelerated);
  write_artifact_file(cell_path(key), ArtifactKind::kResultCell, w.bytes());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.stores;
}

ResultStore::Counters ResultStore::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace dim::snap
