// Full-system snapshots: the complete state of an AcceleratedSystem —
// CPU registers, sparse memory image, pipeline hazard latches and caches,
// bimodal counters, reconfiguration-cache entries in eviction order, the
// translator (including an in-flight capture), and the accumulated run
// statistics — serialized so a run can stop at an instruction boundary
// (AcceleratedSystem::run_until) and a restored system continues
// bit-identically, as if the run had never paused.
//
// A snapshot is tied to its (program, configuration) pair: restoring
// validates the program hash and the system fingerprint and throws
// SnapshotError(kMismatch) on any disagreement, because state restored
// into a differently-configured system would diverge silently.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "accel/stats.hpp"
#include "accel/system.hpp"
#include "asm/program.hpp"
#include "bt/rcache.hpp"
#include "bt/translator.hpp"
#include "sim/cpu_state.hpp"

namespace dim::snap {

// Serializes the complete state of `system`, which is running `program`
// (the program bytes are not stored — only their hash, which pins the
// snapshot to the image it was taken from).
std::vector<uint8_t> encode_snapshot(const accel::AcceleratedSystem& system,
                                     const asmblr::Program& program);
void save_snapshot(std::ostream& out, const accel::AcceleratedSystem& system,
                   const asmblr::Program& program);
void save_snapshot_file(const std::string& path,
                        const accel::AcceleratedSystem& system,
                        const asmblr::Program& program);

// Restores a snapshot into `system`, which must have been constructed from
// the same program image and a configuration with an equal system
// fingerprint. Throws SnapshotError: kMismatch when the snapshot belongs
// to a different program/configuration, kMalformed (and the other
// container taxonomy codes for the stream/file variants) on a corrupt
// artifact. On throw the system may be partially restored and must be
// discarded — validation happens before any mutation for the identity
// checks, but a malformed payload can be detected mid-apply.
void restore_snapshot_payload(accel::AcceleratedSystem& system,
                              const std::vector<uint8_t>& payload,
                              const asmblr::Program& program);
void restore_snapshot(accel::AcceleratedSystem& system, std::istream& in,
                      const asmblr::Program& program);
void restore_snapshot_file(accel::AcceleratedSystem& system,
                           const std::string& path,
                           const asmblr::Program& program);

// Human-readable summary of a snapshot, decoded without a target system —
// what `dimsim-analyze --snapshot` prints.
struct SnapshotRcacheEntry {
  uint32_t start_pc = 0;
  uint32_t end_pc = 0;
  int rows_used = 0;
  int ops = 0;
  int num_bbs = 0;
};

struct SnapshotInfo {
  uint64_t program_hash = 0;
  uint64_t system_fingerprint = 0;
  sim::CpuState cpu;
  size_t memory_pages = 0;
  uint64_t pipeline_cycles = 0;
  size_t predictor_branches = 0;
  size_t predictor_saturated = 0;  // counters at 0 or 3
  bt::RcacheCounters rcache_counters;
  std::vector<SnapshotRcacheEntry> rcache_entries;  // oldest first
  bt::TranslatorStats translator_stats;
  bool capture_in_flight = false;
  uint32_t capture_pc = 0;   // valid when capture_in_flight
  int capture_ops = 0;       // ops placed so far in the in-flight capture
  accel::AccelStats stats;
};

SnapshotInfo inspect_snapshot(const std::vector<uint8_t>& payload);
SnapshotInfo inspect_snapshot_file(const std::string& path);

}  // namespace dim::snap
