#include "snap/format.hpp"

namespace dim::snap {

const char* artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kSnapshot: return "snapshot";
    case ArtifactKind::kWarmStart: return "warm-start";
    case ArtifactKind::kResultCell: return "result-cell";
  }
  return "unknown";
}

const char* snap_errc_name(SnapErrc code) {
  switch (code) {
    case SnapErrc::kBadMagic: return "bad magic";
    case SnapErrc::kBadVersion: return "version mismatch";
    case SnapErrc::kTruncated: return "truncated";
    case SnapErrc::kCrcMismatch: return "checksum mismatch";
    case SnapErrc::kMalformed: return "malformed payload";
    case SnapErrc::kMismatch: return "artifact mismatch";
    case SnapErrc::kIo: return "i/o error";
  }
  return "unknown error";
}

uint32_t crc32(const void* data, size_t size) {
  // Table generated on first use (reflected polynomial 0xEDB88320).
  static const auto table = [] {
    struct Table {
      uint32_t entry[256];
    } t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t.entry[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entry[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dim::snap
