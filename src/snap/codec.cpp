#include "snap/codec.hpp"

#include <algorithm>
#include <vector>

namespace dim::snap {

uint64_t fnv1a64(const std::vector<uint8_t>& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

void encode_cache_params(Writer& w, const mem::CacheParams& p) {
  w.u32(p.size_bytes);
  w.u32(p.line_bytes);
  w.u32(p.miss_penalty);
  w.boolean(p.enabled);
}

void encode_machine(Writer& w, const sim::MachineConfig& m) {
  w.u32(m.timing.taken_branch_penalty);
  w.u32(m.timing.load_use_stall);
  w.u32(m.timing.mult_latency);
  w.u32(m.timing.div_latency);
  w.u32(m.timing.issue_width);
  encode_cache_params(w, m.timing.icache);
  encode_cache_params(w, m.timing.dcache);
  w.u64(m.max_instructions);
  w.u32(m.initial_sp);
  w.u32(m.initial_gp);
  // host_trace_dispatch is deliberately NOT encoded: it selects a host-side
  // execution strategy with no architectural or timing effect (pinned by
  // dimsim-fuzz --cmp-dispatch), so snapshots restore across dispatch modes
  // and existing golden .snap fingerprints stay valid.
}

// The translator-facing knobs: everything that shapes WHICH configurations
// get built and how they are placed.
void encode_translation_knobs(Writer& w, const accel::SystemConfig& c) {
  w.i32(c.shape.lines);
  w.i32(c.shape.alus_per_line);
  w.i32(c.shape.muls_per_line);
  w.i32(c.shape.ldsts_per_line);
  w.boolean(c.speculation);
  w.i32(c.max_spec_bbs);
  w.i32(c.min_instructions);
  w.boolean(c.allow_mem);
  w.boolean(c.allow_shifts);
  w.boolean(c.allow_mult);
  w.i32(c.max_input_regs);
  w.i32(c.max_output_regs);
  std::vector<uint32_t> starts(c.allowed_starts.begin(), c.allowed_starts.end());
  std::sort(starts.begin(), starts.end());
  w.u64(starts.size());
  for (uint32_t pc : starts) w.u32(pc);
  w.boolean(c.predication);
  w.i32(c.max_hammock_ops);
  w.i32(c.max_pred_slots);
  w.u8(static_cast<uint8_t>(c.fault_injection));
}

}  // namespace

uint64_t program_hash(const asmblr::Program& program) {
  Writer w;
  w.u32(program.entry);
  w.u64(program.segments.size());
  for (const asmblr::Segment& seg : program.segments) {
    w.u32(seg.base);
    w.u64(seg.bytes.size());
    w.raw(seg.bytes.data(), seg.bytes.size());
  }
  return fnv1a64(w.bytes());
}

uint64_t system_fingerprint(const accel::SystemConfig& config) {
  Writer w;
  encode_machine(w, config.machine);
  encode_translation_knobs(w, config);
  w.i32(config.array_timing.alu_rows_per_cycle);
  w.i32(config.array_timing.mul_row_cycles);
  w.i32(config.array_timing.mem_row_cycles);
  w.i32(config.array_timing.reconfig_overlap_cycles);
  w.i32(config.array_timing.regfile_read_ports);
  w.i32(config.array_timing.regfile_write_ports);
  w.i32(config.array_timing.config_words_per_cycle);
  w.i32(config.array_timing.finalize_cycles);
  w.i32(config.array_timing.misspec_penalty);
  w.u64(config.cache_slots);
  w.u8(static_cast<uint8_t>(config.cache_replacement));
  w.u8(static_cast<uint8_t>(config.residency));
  w.i32(config.misspec_flush_threshold);
  w.u64(config.translation_cost_per_instr);
  w.boolean(config.array_enabled);
  // The execution-mode personality changes timing/stats, so it must key
  // the fingerprint — but it is appended ONLY when non-default, following
  // the host_trace_dispatch precedent above: every row-sync fingerprint
  // (including the committed golden .snap files) keeps its exact pre-mode
  // value.
  if (config.exec_mode.mode != rra::ExecMode::kRowSync) {
    w.u8(static_cast<uint8_t>(config.exec_mode.mode));
    w.i32(config.exec_mode.fifo_capacity);
    w.i32(config.exec_mode.lanes);
  }
  return fnv1a64(w.bytes());
}

uint64_t translation_fingerprint(const accel::SystemConfig& config) {
  Writer w;
  encode_translation_knobs(w, config);
  return fnv1a64(w.bytes());
}

void put_cpu(Writer& w, const sim::CpuState& state) {
  for (uint32_t r : state.regs) w.u32(r);
  w.u32(state.pc);
  w.u32(state.hi);
  w.u32(state.lo);
  w.boolean(state.halted);
  w.str(state.output);
}

sim::CpuState get_cpu(Reader& r) {
  sim::CpuState state;
  for (uint32_t& reg : state.regs) reg = r.u32();
  state.pc = r.u32();
  state.hi = r.u32();
  state.lo = r.u32();
  state.halted = r.boolean();
  state.output = r.str();
  return state;
}

void put_stats(Writer& w, const accel::AccelStats& stats) {
  w.u64(stats.instructions);
  w.u64(stats.proc_instructions);
  w.u64(stats.array_instructions);
  w.u64(stats.cycles);
  w.u64(stats.proc_cycles);
  w.u64(stats.array_cycles);
  w.u64(stats.array_exec_cycles);
  w.u64(stats.reconfig_stall_cycles);
  w.u64(stats.array_dcache_stall_cycles);
  w.u64(stats.array_finalize_cycles);
  w.u64(stats.misspec_penalty_cycles);
  w.u64(stats.array_activations);
  w.u64(stats.misspeculations);
  w.u64(stats.config_flushes);
  w.u64(stats.extensions);
  w.u64(stats.rcache_hits);
  w.u64(stats.rcache_misses);
  w.u64(stats.rcache_insertions);
  w.u64(stats.rcache_evictions);
  w.u64(stats.bt_observed);
  w.u64(stats.hammocks_merged);
  w.u64(stats.residency_hits);
  w.u64(stats.residency_drops);
  w.u64(stats.array_alu_ops);
  w.u64(stats.array_mul_ops);
  w.u64(stats.array_mem_ops);
  w.u64(stats.proc_mem_accesses);
  w.u64(stats.config_words_loaded);
  w.u64(stats.config_words_written);
  w.boolean(stats.hit_limit);
  put_cpu(w, stats.final_state);
  w.u64(stats.memory_hash);
}

accel::AccelStats get_stats(Reader& r) {
  accel::AccelStats stats;
  stats.instructions = r.u64();
  stats.proc_instructions = r.u64();
  stats.array_instructions = r.u64();
  stats.cycles = r.u64();
  stats.proc_cycles = r.u64();
  stats.array_cycles = r.u64();
  stats.array_exec_cycles = r.u64();
  stats.reconfig_stall_cycles = r.u64();
  stats.array_dcache_stall_cycles = r.u64();
  stats.array_finalize_cycles = r.u64();
  stats.misspec_penalty_cycles = r.u64();
  stats.array_activations = r.u64();
  stats.misspeculations = r.u64();
  stats.config_flushes = r.u64();
  stats.extensions = r.u64();
  stats.rcache_hits = r.u64();
  stats.rcache_misses = r.u64();
  stats.rcache_insertions = r.u64();
  stats.rcache_evictions = r.u64();
  stats.bt_observed = r.u64();
  stats.hammocks_merged = r.u64();
  stats.residency_hits = r.u64();
  stats.residency_drops = r.u64();
  stats.array_alu_ops = r.u64();
  stats.array_mul_ops = r.u64();
  stats.array_mem_ops = r.u64();
  stats.proc_mem_accesses = r.u64();
  stats.config_words_loaded = r.u64();
  stats.config_words_written = r.u64();
  stats.hit_limit = r.boolean();
  stats.final_state = get_cpu(r);
  stats.memory_hash = r.u64();
  return stats;
}

bool has_exec_stats(const accel::AccelStats& stats) {
  return stats.fifo_stall_cycles != 0 || stats.elastic_deadlock_fallbacks != 0 ||
         stats.simt_warp_hits != 0 || stats.simt_warp_resets != 0;
}

void put_exec_stats(Writer& w, const accel::AccelStats& stats) {
  w.u64(stats.fifo_stall_cycles);
  w.u64(stats.elastic_deadlock_fallbacks);
  w.u64(stats.simt_warp_hits);
  w.u64(stats.simt_warp_resets);
}

void get_exec_stats(Reader& r, accel::AccelStats& stats) {
  stats.fifo_stall_cycles = r.u64();
  stats.elastic_deadlock_fallbacks = r.u64();
  stats.simt_warp_hits = r.u64();
  stats.simt_warp_resets = r.u64();
}

void put_array_op(Writer& w, const rra::ArrayOp& op) {
  w.u8(static_cast<uint8_t>(op.instr.op));
  w.u8(op.instr.rs);
  w.u8(op.instr.rt);
  w.u8(op.instr.rd);
  w.u8(op.instr.shamt);
  w.u16(op.instr.imm16);
  w.u32(op.instr.target26);
  w.u32(op.pc);
  w.i32(op.row);
  w.i32(op.col);
  w.u8(static_cast<uint8_t>(op.kind));
  w.i32(op.bb_index);
  w.boolean(op.is_branch);
  w.boolean(op.predicted_taken);
  w.i32(op.pred_slot);
  w.boolean(op.pred_when_taken);
  w.boolean(op.is_pred_def);
  w.boolean(op.is_join_jump);
}

rra::ArrayOp get_array_op(Reader& r) {
  rra::ArrayOp op;
  const uint8_t raw_op = r.u8();
  if (raw_op == 0 || raw_op > static_cast<uint8_t>(isa::Op::kSw)) {
    r.fail("invalid opcode " + std::to_string(raw_op));
  }
  op.instr.op = static_cast<isa::Op>(raw_op);
  op.instr.rs = r.u8();
  op.instr.rt = r.u8();
  op.instr.rd = r.u8();
  op.instr.shamt = r.u8();
  op.instr.imm16 = r.u16();
  op.instr.target26 = r.u32();
  if (op.instr.rs > 31 || op.instr.rt > 31 || op.instr.rd > 31 || op.instr.shamt > 31) {
    r.fail("register field out of range");
  }
  op.pc = r.u32();
  op.row = r.i32();
  op.col = r.i32();
  const uint8_t raw_kind = r.u8();
  if (raw_kind > static_cast<uint8_t>(isa::FuKind::kNone)) {
    r.fail("invalid functional-unit kind " + std::to_string(raw_kind));
  }
  op.kind = static_cast<isa::FuKind>(raw_kind);
  op.bb_index = r.i32();
  op.is_branch = r.boolean();
  op.predicted_taken = r.boolean();
  op.pred_slot = r.i32();
  op.pred_when_taken = r.boolean();
  op.is_pred_def = r.boolean();
  op.is_join_jump = r.boolean();
  if (op.row < 0 || op.col < 0 || op.bb_index < 0) r.fail("negative placement field");
  if (op.pred_slot < -1 || op.pred_slot >= rra::kMaxPredSlots) {
    r.fail("predicate slot out of range");
  }
  if (op.pred_slot < 0 && (op.is_pred_def || op.pred_when_taken)) {
    r.fail("predicate flags without a slot");
  }
  return op;
}

void put_configuration(Writer& w, const rra::Configuration& config) {
  w.u32(config.start_pc);
  w.u32(config.end_pc);
  w.i32(config.num_bbs);
  w.i32(config.input_regs);
  w.i32(config.output_regs);
  w.i32(config.immediates);
  w.i32(config.misspec_count);
  w.boolean(config.no_extend);
  w.i32(config.pred_slots);
  w.u64(config.revision);
  w.i32(config.rows_used);
  w.u64(config.row_kinds.size());
  for (rra::RowKind k : config.row_kinds) w.u8(static_cast<uint8_t>(k));
  w.u64(config.ops.size());
  for (const rra::ArrayOp& op : config.ops) put_array_op(w, op);
}

rra::Configuration get_configuration(Reader& r) {
  rra::Configuration config;
  config.start_pc = r.u32();
  config.end_pc = r.u32();
  config.num_bbs = r.i32();
  config.input_regs = r.i32();
  config.output_regs = r.i32();
  config.immediates = r.i32();
  config.misspec_count = r.i32();
  config.no_extend = r.boolean();
  config.pred_slots = r.i32();
  config.revision = r.u64();
  config.rows_used = r.i32();
  if (config.num_bbs < 1 || config.rows_used < 0 || config.input_regs < 0 ||
      config.output_regs < 0 || config.immediates < 0) {
    r.fail("negative configuration header field");
  }
  if (config.pred_slots < 0 || config.pred_slots > rra::kMaxPredSlots) {
    r.fail("predicate slot count out of range");
  }
  const uint64_t nrows = r.u64();
  r.expect_count(nrows, 1);
  if (nrows != static_cast<uint64_t>(config.rows_used)) {
    r.fail("row_kinds count disagrees with rows_used");
  }
  config.row_kinds.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    const uint8_t k = r.u8();
    if (k > static_cast<uint8_t>(rra::RowKind::kMem)) {
      r.fail("invalid row kind " + std::to_string(k));
    }
    config.row_kinds.push_back(static_cast<rra::RowKind>(k));
  }
  const uint64_t nops = r.u64();
  r.expect_count(nops, 35);  // serialized ArrayOp size
  config.ops.reserve(nops);
  for (uint64_t i = 0; i < nops; ++i) {
    rra::ArrayOp op = get_array_op(r);
    if (op.row >= config.rows_used) r.fail("op row beyond rows_used");
    config.ops.push_back(op);
  }
  return config;
}

void put_profile(Writer& w, const obs::ProfileTable& table) {
  const std::vector<obs::ConfigProfile> profiles = table.by_start_pc();
  w.u64(profiles.size());
  for (const obs::ConfigProfile& p : profiles) {
    w.u32(p.start_pc);
    w.u64(p.activations);
    w.u64(p.committed_ops);
    w.u64(p.misspeculations);
    w.u64(p.exec_cycles);
    w.u64(p.reconfig_stall_cycles);
    w.u64(p.dcache_stall_cycles);
    w.u64(p.finalize_cycles);
    w.u64(p.misspec_penalty_cycles);
    w.u64(p.captures_started);
    w.u64(p.captures_aborted);
    w.u64(p.captures_too_short);
    w.u64(p.finalizations);
    w.u64(p.insertions);
    w.u64(p.evictions);
    w.u64(p.flushes);
    w.u64(p.extensions_begun);
    w.u64(p.extensions_completed);
    w.u64(p.hammocks_merged);
    w.u64(p.residency_hits);
    w.u64(p.residency_drops);
  }
}

obs::ProfileTable get_profile(Reader& r) {
  obs::ProfileTable table;
  const uint64_t count = r.u64();
  r.expect_count(count, 4 + 20 * 8);
  for (uint64_t i = 0; i < count; ++i) {
    obs::ConfigProfile p;
    p.start_pc = r.u32();
    p.activations = r.u64();
    p.committed_ops = r.u64();
    p.misspeculations = r.u64();
    p.exec_cycles = r.u64();
    p.reconfig_stall_cycles = r.u64();
    p.dcache_stall_cycles = r.u64();
    p.finalize_cycles = r.u64();
    p.misspec_penalty_cycles = r.u64();
    p.captures_started = r.u64();
    p.captures_aborted = r.u64();
    p.captures_too_short = r.u64();
    p.finalizations = r.u64();
    p.insertions = r.u64();
    p.evictions = r.u64();
    p.flushes = r.u64();
    p.extensions_begun = r.u64();
    p.extensions_completed = r.u64();
    p.hammocks_merged = r.u64();
    p.residency_hits = r.u64();
    p.residency_drops = r.u64();
    table.add_profile(p);
  }
  return table;
}

}  // namespace dim::snap
