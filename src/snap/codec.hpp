// Field-level codecs shared by the three persistence artifacts: CPU state,
// run statistics, array configurations, event profiles, and the identity
// hashes that key warm-start files and result-store cells.
#pragma once

#include <cstdint>

#include "accel/stats.hpp"
#include "accel/system.hpp"
#include "asm/program.hpp"
#include "obs/profile.hpp"
#include "rra/configuration.hpp"
#include "sim/cpu_state.hpp"
#include "snap/io.hpp"

namespace dim::snap {

// FNV-1a 64-bit — the hash behind every identity key in this subsystem.
uint64_t fnv1a64(const std::vector<uint8_t>& bytes);

// FNV-1a over the program image (entry point + every segment's base and
// bytes). Symbols are excluded: they do not affect execution, and two
// builds of the same image must warm-start each other.
uint64_t program_hash(const asmblr::Program& program);

// FNV-1a over every SystemConfig field that can change simulated behavior
// (timing, shape, cache geometry, speculation, translator restrictions,
// fault injection, ...). The event sink is excluded — tracing is
// observation-only by contract. Two systems with equal fingerprints run a
// given program identically, so a snapshot may only be restored into a
// system whose fingerprint matches.
uint64_t system_fingerprint(const accel::SystemConfig& config);

// Fingerprint of just the translator-facing knobs (shape + capacity +
// speculation + restrictions): two systems with equal translation
// fingerprints build identical configurations, which is the compatibility
// contract of a warm-start file.
uint64_t translation_fingerprint(const accel::SystemConfig& config);

void put_cpu(Writer& w, const sim::CpuState& state);
sim::CpuState get_cpu(Reader& r);

void put_stats(Writer& w, const accel::AccelStats& stats);
accel::AccelStats get_stats(Reader& r);

// The execution-mode extension counters of AccelStats (always zero under
// row-sync). Serialized OUTSIDE put_stats — in optional trailing blocks
// gated on has_exec_stats / the active mode — so the classic stats record,
// and every artifact byte-layout that embeds it, is unchanged and old
// row-sync snapshots, warm-start files and result-store cells keep
// loading. Readers default the fields to zero when the block is absent.
bool has_exec_stats(const accel::AccelStats& stats);
void put_exec_stats(Writer& w, const accel::AccelStats& stats);
void get_exec_stats(Reader& r, accel::AccelStats& stats);

// One placed array op (used standalone for in-flight builder state; the
// reader validates opcode, register fields, FU kind and placement).
void put_array_op(Writer& w, const rra::ArrayOp& op);
rra::ArrayOp get_array_op(Reader& r);

void put_configuration(Writer& w, const rra::Configuration& config);
rra::Configuration get_configuration(Reader& r);

void put_profile(Writer& w, const obs::ProfileTable& table);
obs::ProfileTable get_profile(Reader& r);

}  // namespace dim::snap
