#include "snap/warmstart.hpp"

#include <utility>

#include "snap/codec.hpp"
#include "snap/io.hpp"
#include "snap/system_access.hpp"

namespace dim::snap {
namespace {

struct WarmStartData {
  uint64_t program_hash = 0;
  uint64_t translation_fingerprint = 0;
  std::vector<rra::Configuration> entries;
};

WarmStartData parse_warm_start(const std::vector<uint8_t>& payload) {
  Reader r(payload);
  WarmStartData d;
  d.program_hash = r.u64();
  d.translation_fingerprint = r.u64();
  const uint64_t count = r.u64();
  r.expect_count(count, 50);  // minimum serialized Configuration size
  d.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    d.entries.push_back(get_configuration(r));
  }
  if (!r.done()) r.fail("trailing bytes after configurations");
  return d;
}

}  // namespace

std::vector<uint8_t> encode_warm_start(const accel::AcceleratedSystem& system,
                                       const asmblr::Program& program) {
  Writer w;
  w.u64(program_hash(program));
  w.u64(translation_fingerprint(SystemAccess::config(system)));
  const auto entries = SystemAccess::rcache(system).export_entries();
  w.u64(entries.size());
  for (const rra::Configuration& config : entries) put_configuration(w, config);
  return w.take();
}

void save_warm_start(std::ostream& out, const accel::AcceleratedSystem& system,
                     const asmblr::Program& program) {
  write_container(out, ArtifactKind::kWarmStart, encode_warm_start(system, program));
}

void save_warm_start_file(const std::string& path,
                          const accel::AcceleratedSystem& system,
                          const asmblr::Program& program) {
  write_artifact_file(path, ArtifactKind::kWarmStart,
                      encode_warm_start(system, program));
}

size_t load_warm_start_payload(accel::AcceleratedSystem& system,
                               const std::vector<uint8_t>& payload,
                               const asmblr::Program& program) {
  WarmStartData d = parse_warm_start(payload);
  if (d.program_hash != program_hash(program)) {
    throw SnapshotError(SnapErrc::kMismatch,
                        "warm-start file belongs to a different program image");
  }
  if (d.translation_fingerprint !=
      translation_fingerprint(SystemAccess::config(system))) {
    throw SnapshotError(
        SnapErrc::kMismatch,
        "warm-start file was translated under different translation knobs");
  }
  size_t loaded = 0;
  for (rra::Configuration& config : d.entries) {
    if (SystemAccess::rcache(system).preload(std::move(config))) ++loaded;
  }
  return loaded;
}

size_t load_warm_start(accel::AcceleratedSystem& system, std::istream& in,
                       const asmblr::Program& program) {
  return load_warm_start_payload(
      system, read_container(in, ArtifactKind::kWarmStart), program);
}

size_t load_warm_start_file(accel::AcceleratedSystem& system,
                            const std::string& path,
                            const asmblr::Program& program) {
  return load_warm_start_payload(
      system, read_artifact_file(path, ArtifactKind::kWarmStart), program);
}

WarmStartInfo inspect_warm_start(const std::vector<uint8_t>& payload) {
  WarmStartData d = parse_warm_start(payload);
  WarmStartInfo info;
  info.program_hash = d.program_hash;
  info.translation_fingerprint = d.translation_fingerprint;
  info.entries.reserve(d.entries.size());
  for (const rra::Configuration& config : d.entries) {
    SnapshotRcacheEntry e;
    e.start_pc = config.start_pc;
    e.end_pc = config.end_pc;
    e.rows_used = config.rows_used;
    e.ops = static_cast<int>(config.ops.size());
    e.num_bbs = config.num_bbs;
    info.entries.push_back(e);
  }
  return info;
}

WarmStartInfo inspect_warm_start_file(const std::string& path) {
  return inspect_warm_start(read_artifact_file(path, ArtifactKind::kWarmStart));
}

}  // namespace dim::snap
