#include "power/area_model.hpp"

#include <cmath>

#include "common/bitutil.hpp"
#include "rra/configuration.hpp"

namespace dim::power {
namespace {

// Gate costs back-derived from Table 3a (configuration #1).
constexpr int64_t kAluGates = 1564;        // 300288 / 192
constexpr int64_t kMultiplierGates = 6689; // 40134 / 6
// LD/ST units cost 164/3 gates each (1968 / 36); kept exact as a rational.
constexpr int64_t kLdstGatesNum = 164;
constexpr int64_t kLdstGatesDen = 3;
constexpr int64_t kInputMuxGates = 642;   // 261936 / 408
constexpr int64_t kOutputMuxGates = 272;  // 58752 / 216
constexpr int64_t kDimGates = 1024;

// Execution-mode overheads (mode_area_overhead). A flip-flop is ~8 gates
// in the Table 3 cost basis, so one elastic token slot (32-bit data
// register + valid/ready handshake) is ~300 gates, and one extra SIMT lane
// context (34 registers x 32 bits) is ~8704 gates plus mask logic.
constexpr int64_t kFifoTokenGates = 300;
constexpr int64_t kLaneContextGates = 34 * 32 * 8;
constexpr int64_t kLaneMaskGates = 64;

}  // namespace

AreaReport array_area(const rra::ArrayShape& shape) {
  AreaReport r;
  r.alus = shape.lines * shape.alus_per_line;
  r.multipliers = shape.lines * shape.muls_per_line / 4;  // 4-line pipeline
  r.ldst_units = shape.lines * shape.ldsts_per_line * 3 / 4;
  r.input_muxes = shape.lines * (2 * shape.alus_per_line + 1);
  r.output_muxes = shape.lines * (shape.alus_per_line + 1);

  r.alu_gates = static_cast<int64_t>(r.alus) * kAluGates;
  r.multiplier_gates = static_cast<int64_t>(r.multipliers) * kMultiplierGates;
  r.ldst_gates = static_cast<int64_t>(r.ldst_units) * kLdstGatesNum / kLdstGatesDen;
  r.input_mux_gates = static_cast<int64_t>(r.input_muxes) * kInputMuxGates;
  r.output_mux_gates = static_cast<int64_t>(r.output_muxes) * kOutputMuxGates;
  r.dim_gates = kDimGates;
  r.total_gates = r.alu_gates + r.multiplier_gates + r.ldst_gates +
                  r.input_mux_gates + r.output_mux_gates + r.dim_gates;
  return r;
}

ModeAreaOverhead mode_area_overhead(const rra::ArrayShape& shape,
                                    const rra::ExecModeParams& mode) {
  ModeAreaOverhead o;
  switch (mode.mode) {
    case rra::ExecMode::kElastic: {
      const int64_t capacity = mode.fifo_capacity > 0 ? mode.fifo_capacity : 1;
      o.fifo_gates = static_cast<int64_t>(shape.lines) * capacity * kFifoTokenGates;
      break;
    }
    case rra::ExecMode::kSimt: {
      const int64_t lanes = mode.lanes > 0 ? mode.lanes : 1;
      o.lane_context_gates = (lanes - 1) * (kLaneContextGates + kLaneMaskGates);
      break;
    }
    case rra::ExecMode::kRowSync:
      break;
  }
  return o;
}

ConfigBits config_bits(const rra::ArrayShape& shape) {
  ConfigBits b;
  // Write bitmap: one bit per general register per in-flight write slot
  // (detection only).
  b.write_bitmap = 256;
  // Resource table: ~3 bits per row/column cell; the constant reproduces
  // Table 3b's 786 bits for configuration #1 (24 lines x 11 columns).
  b.resource_table = static_cast<int>(
      std::lround(static_cast<double>(shape.lines) * shape.columns() * 786.0 / (24.0 * 11.0)));
  // Reads table: per line, two context-bus read selectors over the 34
  // context registers (24 x 2 x 34 = 1632).
  b.reads_table = shape.lines * 2 * rra::kNumCtxRegs;
  // Writes table: 24 write-back select bits per line (24 x 24 = 576).
  b.writes_table = shape.lines * 24;
  b.context_start = 40;
  b.context_current = 40;
  b.immediate_table = 128;
  return b;
}

int64_t cache_bytes(const rra::ArrayShape& shape, int slots) {
  const int bits_per_slot = config_bits(shape).stored_total();
  return static_cast<int64_t>(ceil_div(static_cast<int64_t>(bits_per_slot) * slots, 8));
}

}  // namespace dim::power
