// Analytic per-event energy model.
//
// Substitution note (see DESIGN.md §4): the paper measured power with
// Synopsys PowerCompiler on a synthesized Minimips @ TSMC 0.18µ. Offline we
// model energy as Σ events × per-event cost, with constants calibrated so
// the component ratios match the paper's Figure 5 breakdown (core vs
// instruction memory vs data memory vs array+cache vs DIM). The paper's
// energy argument — fewer cycles and far fewer instruction fetches outweigh
// the added array/cache/BT power — is preserved because it only depends on
// those relative costs.
#pragma once

#include "accel/stats.hpp"

namespace dim::power {

// Energy costs in nanojoule per event; "cycle" entries are charged per
// elapsed cycle (they fold static + clock power of that component).
struct EnergyParams {
  // Calibrated so that (a) MIPS+array draws moderately more power per cycle
  // than the standalone MIPS (paper Fig. 5: "very similar"), and (b) the
  // C#2/64-slot energy ratio over the suite lands near the paper's 1.73x.
  double core_cycle = 0.16;       // MIPS datapath + control per cycle
  double core_instr = 0.08;       // per instruction retired in the pipeline
  double imem_fetch = 0.42;       // instruction memory read
  double dmem_access = 0.50;      // data memory read/write
  double array_op = 0.055;        // one functional-unit evaluation
  double array_mul_op = 0.200;    // multiplier evaluation (dominates ALUs)
  double array_busy_cycle = 0.300; // array clocking while executing
  double array_idle_cycle = 0.020; // array static while idle
  double rcache_read_word = 0.045; // configuration word streamed at reconfig
  double rcache_write_word = 0.050;
  double rcache_static_per_slot_cycle = 0.00008;
  double bt_observe = 0.030;      // DIM table update per observed instruction

  // Execution-mode extension events (src/rra/exec_mode/). The counters
  // driving these are zero under row-sync, so the paper's Figure 5 numbers
  // are untouched by the mode axis.
  double fifo_stall_cycle = 0.010; // elastic: handshake clocking while stalled
  double simt_lane_issue = 0.020;  // SIMT: lane context switch per warp hit

  // Paper future work: "techniques to switch off functional units when they
  // are not being used". 0 = no gating (the paper's evaluated system);
  // 0..1 = fraction of the array's static/clock energy removed while the
  // array is idle.
  double power_gating_efficiency = 0.0;
};

struct EnergyBreakdown {
  double core = 0;    // processor pipeline
  double imem = 0;    // instruction memory
  double dmem = 0;    // data memory
  double array = 0;   // reconfigurable array (FUs + clocking)
  double rcache = 0;  // reconfiguration cache
  double bt = 0;      // DIM detection hardware

  double total() const { return core + imem + dmem + array + rcache + bt; }
};

// Total energy (nJ) of a run. For a baseline run (no array) the array,
// rcache and bt terms are zero by construction of the stats.
EnergyBreakdown compute_energy(const accel::AccelStats& stats,
                               size_t cache_slots,
                               const EnergyParams& params = {});

// Average power (in nJ/cycle == W at 1 GHz; we report it normalized as
// "power per cycle" exactly like Figure 5).
EnergyBreakdown compute_power_per_cycle(const accel::AccelStats& stats,
                                        size_t cache_slots,
                                        const EnergyParams& params = {});

}  // namespace dim::power
