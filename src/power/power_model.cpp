#include "power/power_model.hpp"

namespace dim::power {

EnergyBreakdown compute_energy(const accel::AccelStats& stats, size_t cache_slots,
                               const EnergyParams& p) {
  EnergyBreakdown e;
  const double cycles = static_cast<double>(stats.cycles);

  e.core = cycles * p.core_cycle +
           static_cast<double>(stats.proc_instructions) * p.core_instr;

  // Instructions executed on the array are never fetched from instruction
  // memory again — the paper's third energy-saving mechanism.
  e.imem = static_cast<double>(stats.proc_instructions) * p.imem_fetch;

  e.dmem = static_cast<double>(stats.proc_mem_accesses + stats.array_mem_ops) *
           p.dmem_access;

  const double busy = static_cast<double>(stats.array_cycles);
  const double idle = cycles > busy ? cycles - busy : 0.0;
  const bool has_array = stats.array_activations > 0 || stats.bt_observed > 0;
  if (has_array) {
    const double gate = 1.0 - p.power_gating_efficiency;
    e.array = static_cast<double>(stats.array_alu_ops + stats.array_mem_ops) * p.array_op +
              static_cast<double>(stats.array_mul_ops) * p.array_mul_op +
              busy * p.array_busy_cycle + idle * p.array_idle_cycle * gate +
              // Execution-mode extension events (zero under row-sync).
              static_cast<double>(stats.fifo_stall_cycles) * p.fifo_stall_cycle +
              static_cast<double>(stats.simt_warp_hits) * p.simt_lane_issue;
    e.rcache = static_cast<double>(stats.config_words_loaded) * p.rcache_read_word +
               static_cast<double>(stats.config_words_written) * p.rcache_write_word +
               cycles * static_cast<double>(cache_slots) * p.rcache_static_per_slot_cycle;
    e.bt = static_cast<double>(stats.bt_observed) * p.bt_observe;
  }
  return e;
}

EnergyBreakdown compute_power_per_cycle(const accel::AccelStats& stats,
                                        size_t cache_slots, const EnergyParams& p) {
  EnergyBreakdown e = compute_energy(stats, cache_slots, p);
  const double cycles = stats.cycles == 0 ? 1.0 : static_cast<double>(stats.cycles);
  e.core /= cycles;
  e.imem /= cycles;
  e.dmem /= cycles;
  e.array /= cycles;
  e.rcache /= cycles;
  e.bt /= cycles;
  return e;
}

}  // namespace dim::power
