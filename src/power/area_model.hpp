// Area model (paper Table 3).
//
// Per-unit gate costs are back-derived from Table 3a. Unit counts follow the
// paper's physical organization, which differs from the logical rows of
// Table 1 in two calibrated ways we document here and in EXPERIMENTS.md:
//   - a multiplier is pipelined across 4 lines, so physical multipliers =
//     lines × muls_per_line / 4  (24×1/4 = 6, matching Table 3a);
//   - load/store units are shared 4:3 across lines (48 × 3/4 = 36);
//   - input muxes per line = 2×ALUs + 1, output muxes per line = ALUs + 1
//     (17 and 9 per line for configuration #1: 408 and 216 in total).
// With these rules configuration #1 reproduces Table 3a exactly
// (664,102 gates including the 1,024-gate DIM hardware).
#pragma once

#include <cstdint>

#include "rra/array_shape.hpp"
#include "rra/exec_mode/execution_model.hpp"

namespace dim::power {

struct AreaReport {
  int alus = 0;
  int multipliers = 0;
  int ldst_units = 0;
  int input_muxes = 0;
  int output_muxes = 0;
  int64_t alu_gates = 0;
  int64_t multiplier_gates = 0;
  int64_t ldst_gates = 0;
  int64_t input_mux_gates = 0;
  int64_t output_mux_gates = 0;
  int64_t dim_gates = 0;
  int64_t total_gates = 0;
  // "one gate is equivalent to 4 transistors"
  int64_t total_transistors() const { return total_gates * 4; }
};

AreaReport array_area(const rra::ArrayShape& shape);

// Area overhead of a non-row-sync execution personality on top of
// array_area (src/rra/exec_mode/). Zero in every field for row-sync, so
// the paper's Table 3 numbers are untouched by the mode axis.
//   elastic — per-row output queues: fifo_capacity token slots per line,
//             each a 32-bit data register plus valid/ready handshake;
//   SIMT    — (lanes - 1) extra input contexts (the full 34-register
//             context per extra lane) plus per-lane predicate-mask logic.
struct ModeAreaOverhead {
  int64_t fifo_gates = 0;
  int64_t lane_context_gates = 0;
  int64_t total_gates() const { return fifo_gates + lane_context_gates; }
};

ModeAreaOverhead mode_area_overhead(const rra::ArrayShape& shape,
                                    const rra::ExecModeParams& mode);

// Bits to store one configuration in the reconfiguration cache (Table 3b).
// The write bitmap is detection-only and excluded from the stored total,
// exactly as in the paper.
struct ConfigBits {
  int write_bitmap = 0;   // temporary, detection phase only
  int resource_table = 0;
  int reads_table = 0;
  int writes_table = 0;
  int context_start = 0;
  int context_current = 0;
  int immediate_table = 0;
  int stored_total() const {
    return resource_table + reads_table + writes_table + context_start +
           context_current + immediate_table;
  }
};

ConfigBits config_bits(const rra::ArrayShape& shape);

// Bytes of reconfiguration-cache storage for `slots` entries (Table 3c).
int64_t cache_bytes(const rra::ArrayShape& shape, int slots);

}  // namespace dim::power
