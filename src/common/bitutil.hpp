// Small bit-manipulation helpers shared by the ISA, assembler and simulator.
#pragma once

#include <cstdint>

namespace dim {

// Extracts bits [lo, lo+len) of `word`.
constexpr uint32_t bits(uint32_t word, unsigned lo, unsigned len) {
  return (word >> lo) & ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u));
}

// Sign-extends the low `len` bits of `value` to 32 bits.
constexpr int32_t sign_extend(uint32_t value, unsigned len) {
  const uint32_t mask = 1u << (len - 1);
  const uint32_t low = value & ((len >= 32) ? 0xFFFFFFFFu : ((1u << len) - 1u));
  return static_cast<int32_t>((low ^ mask) - mask);
}

// True if `value` fits in a signed 16-bit immediate.
constexpr bool fits_simm16(int64_t value) { return value >= -32768 && value <= 32767; }

// True if `value` fits in an unsigned 16-bit immediate.
constexpr bool fits_uimm16(int64_t value) { return value >= 0 && value <= 65535; }

// Integer ceiling division for non-negative operands.
constexpr int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace dim
