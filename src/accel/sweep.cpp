#include "accel/sweep.hpp"

#include <atomic>
#include <exception>
#include <iomanip>
#include <mutex>
#include <thread>

#include "accel/stats_io.hpp"

namespace dim::accel {

SweepEngine::SweepEngine(SweepOptions options)
    : options_(options), threads_(options.threads) {
  if (threads_ == 0) threads_ = std::thread::hardware_concurrency();
  if (threads_ == 0) threads_ = 1;  // hardware_concurrency may report 0
}

namespace {

SweepResult run_point(const SweepPoint& point, size_t index, bool collect_profile,
                      ResultCache* cache) {
  SweepResult result;
  if (cache != nullptr && cache->load(point, collect_profile, result)) {
    result.index = index;
    result.label = point.label;
    return result;
  }
  result.index = index;
  result.label = point.label;
  if (collect_profile) {
    // Worker-private sink: overrides any user-supplied sink so nothing is
    // shared across threads, and the profile is scheduling-independent.
    obs::ProfilingSink sink;
    SystemConfig config = point.config;
    config.event_sink = &sink;
    result.accelerated = run_accelerated(*point.program, config);
    result.profile = sink.table();
    result.has_profile = true;
  } else {
    result.accelerated = run_accelerated(*point.program, point.config);
  }
  if (point.baseline != nullptr) {
    result.baseline = *point.baseline;
    result.has_baseline = true;
  } else if (point.run_baseline) {
    result.baseline = baseline_as_stats(*point.program, point.config.machine);
    result.has_baseline = true;
  }
  if (result.has_baseline) {
    result.transparent =
        result.accelerated.final_state.output == result.baseline.final_state.output &&
        result.accelerated.memory_hash == result.baseline.memory_hash;
  }
  if (cache != nullptr) cache->store(point, collect_profile, result);
  return result;
}

}  // namespace

std::vector<SweepResult> SweepEngine::run(const std::vector<SweepPoint>& points) const {
  std::vector<SweepResult> results(points.size());
  if (points.empty()) return results;

  const auto canceled = [this]() {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<size_t>(threads_, points.size()));
  if (workers <= 1) {
    for (size_t i = 0; i < points.size(); ++i) {
      if (canceled()) throw SweepCanceled();
      results[i] = run_point(points[i], i, options_.collect_profiles,
                             options_.result_cache);
    }
    return results;
  }

  // Work-stealing by atomic index: each slot of `results` is written by
  // exactly one worker, so the only shared mutable state is the counter
  // (and the error slot, guarded by a mutex). After any error no new point
  // is claimed; already-claimed points finish, so every point below the
  // erroring index has either completed or recorded its own error — which
  // makes "rethrow the lowest point index" scheduling-independent.
  std::atomic<size_t> next{0};
  std::atomic<bool> errored{false};
  std::mutex error_mutex;
  std::exception_ptr lowest_error;
  size_t lowest_error_index = 0;

  auto worker = [&]() {
    for (;;) {
      if (errored.load(std::memory_order_relaxed) || canceled()) return;
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      try {
        results[i] = run_point(points[i], i, options_.collect_profiles,
                               options_.result_cache);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!lowest_error || i < lowest_error_index) {
          lowest_error = std::current_exception();
          lowest_error_index = i;
        }
        errored.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (lowest_error) std::rethrow_exception(lowest_error);
  if (canceled() && next.load(std::memory_order_relaxed) < points.size()) {
    throw SweepCanceled();
  }
  return results;
}

void write_sweep_json(std::ostream& out, const std::vector<SweepResult>& results) {
  out << "{\n  \"points\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\n";
    out << "      \"index\": " << r.index << ",\n";
    out << "      \"label\": \"" << json_escape(r.label) << "\",\n";
    if (r.has_baseline) {
      out << "      \"speedup\": ";
      write_json_double(out, r.speedup());
      out << ",\n";
      out << "      \"transparent\": " << (r.transparent ? "true" : "false") << ",\n";
      out << "      \"baseline\": {\n";
      write_json_fields(out, r.baseline, "        ");
      out << "      },\n";
    }
    out << "      \"accelerated\": {\n";
    write_json_fields(out, r.accelerated, "        ");
    out << "      }\n    }";
  }
  out << "\n  ]\n}\n";
}

obs::ProfileTable aggregate_profiles(const std::vector<SweepResult>& results) {
  obs::ProfileTable total;
  for (const SweepResult& r : results) {
    if (r.has_profile) total.merge(r.profile);
  }
  return total;
}

}  // namespace dim::accel
