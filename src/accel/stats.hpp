// Statistics of one accelerated (or baseline) run — the raw material for
// every speedup, power and energy figure in the paper.
#pragma once

#include <cstdint>

#include "sim/cpu_state.hpp"

namespace dim::accel {

struct AccelStats {
  // Work.
  uint64_t instructions = 0;        // total committed (processor + array)
  uint64_t proc_instructions = 0;   // retired through the pipeline
  uint64_t array_instructions = 0;  // committed inside the array

  // Time. The array taxonomy is exhaustive: array_exec_cycles +
  // reconfig_stall_cycles + array_dcache_stall_cycles +
  // array_finalize_cycles + misspec_penalty_cycles == array_cycles.
  uint64_t cycles = 0;
  uint64_t proc_cycles = 0;
  uint64_t array_cycles = 0;
  uint64_t array_exec_cycles = 0;          // row evaluation
  uint64_t reconfig_stall_cycles = 0;      // visible reconfiguration stalls
  uint64_t array_dcache_stall_cycles = 0;  // load/store misses inside the array
  uint64_t array_finalize_cycles = 0;      // write-back drain
  uint64_t misspec_penalty_cycles = 0;

  // Array / DIM events.
  uint64_t array_activations = 0;
  uint64_t misspeculations = 0;
  uint64_t config_flushes = 0;
  uint64_t extensions = 0;
  uint64_t rcache_hits = 0;    // dispatch hits == array activations
  uint64_t rcache_misses = 0;  // untranslated sequence-start encounters
  uint64_t rcache_insertions = 0;
  uint64_t rcache_evictions = 0;
  uint64_t bt_observed = 0;
  uint64_t hammocks_merged = 0;   // if-converted hammocks (translator)
  uint64_t residency_hits = 0;    // dispatches that skipped the config reload
  uint64_t residency_drops = 0;   // residency invalidations (SMC / rewrite)

  // Execution-mode extensions (src/rra/exec_mode/). All zero under the
  // default row-sync personality, which is why serialized formats carry
  // them in optional trailing sections (snap/) — old row-sync artifacts
  // keep their exact bytes and keep loading.
  uint64_t fifo_stall_cycles = 0;           // elastic: backpressure share of
                                            // array_exec_cycles (a subset,
                                            // not a sixth taxonomy term)
  uint64_t elastic_deadlock_fallbacks = 0;  // dispatches run row-sync because
                                            // the config failed the deadlock check
  uint64_t simt_warp_hits = 0;              // lanes that skipped the config stream
  uint64_t simt_warp_resets = 0;            // warps retired at lane capacity

  // Activity for the power model.
  uint64_t array_alu_ops = 0;
  uint64_t array_mul_ops = 0;
  uint64_t array_mem_ops = 0;
  uint64_t proc_mem_accesses = 0;
  uint64_t config_words_loaded = 0;   // reconfiguration cache reads
  uint64_t config_words_written = 0;  // reconfiguration cache writes

  // Outcome.
  bool hit_limit = false;
  sim::CpuState final_state;
  uint64_t memory_hash = 0;

  double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
  // Fraction of committed instructions that ran on the array ("coverage").
  double array_coverage() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(array_instructions) / static_cast<double>(instructions);
  }
};

}  // namespace dim::accel
