#include "accel/system.hpp"

#include <algorithm>
#include <limits>

#include "common/bitutil.hpp"
#include "isa/decoder.hpp"
#include "sim/executor.hpp"

namespace dim::accel {

AcceleratedSystem::AcceleratedSystem(const asmblr::Program& program,
                                     const SystemConfig& config)
    : config_(config), pipeline_(config.machine.timing) {
  program.load_into(memory_);
  state_.pc = program.entry;
  state_.regs[29] = config_.machine.initial_sp;
  state_.regs[28] = config_.machine.initial_gp;

  bt::TranslatorParams tparams;
  tparams.shape = config_.shape;
  tparams.speculation = config_.speculation;
  tparams.max_spec_bbs = config_.max_spec_bbs;
  tparams.min_instructions = config_.min_instructions;
  tparams.allow_mem = config_.allow_mem;
  tparams.allow_shifts = config_.allow_shifts;
  tparams.allow_mult = config_.allow_mult;
  tparams.max_input_regs = config_.max_input_regs;
  tparams.max_output_regs = config_.max_output_regs;
  tparams.allowed_starts = config_.allowed_starts;
  tparams.predication = config_.predication;
  tparams.max_hammock_ops = config_.max_hammock_ops;
  tparams.max_pred_slots = config_.max_pred_slots;
  tparams.fault = config_.fault_injection;
  tparams.exec_mode = config_.exec_mode;
  exec_model_ = rra::make_execution_model(config_.exec_mode);
  rcache_ = std::make_unique<bt::ReconfigCache>(config_.cache_slots,
                                                config_.cache_replacement);
  translator_ = std::make_unique<bt::Translator>(tparams, rcache_.get(), &predictor_);
  // Hammock detection must read ahead of the retired stream (the not-taken
  // arm has not retired yet when the branch is observed). Raw decode, not
  // the decode cache: a translation-time peek is not a fetch.
  translator_->set_code_reader([this](uint32_t pc) -> std::optional<isa::Instr> {
    return isa::decode(memory_.read32(pc));
  });

  events_.attach(config_.event_sink, this);
  rcache_->set_event_stream(&events_);
  translator_->set_event_stream(&events_);
}

AcceleratedSystem::~AcceleratedSystem() = default;

void AcceleratedSystem::drop_residency(AccelStats& stats, uint32_t pc) {
  has_resident_ = false;
  warp_fill_ = 0;
  ++stats.residency_drops;
  if (events_.enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kResidencyDropped;
    e.config_pc = pc;
    events_.emit(e);
  }
}

void AcceleratedSystem::execute_on_array(rra::Configuration* config,
                                         AccelStats& stats) {
  translator_->on_array_executed();
  extension_candidate_ = false;

  const uint32_t config_pc = config->start_pc;
  const rra::ExecMode mode = config_.exec_mode.mode;

  // Loop residency: the configuration from the previous dispatch may still
  // be latched on the array. Valid only when both the start PC and the
  // rcache revision stamp match — any rewrite of the entry (extension,
  // re-translation after a flush) bumped the revision. Under SIMT the same
  // latch tracks the warp instead: up to `lanes` consecutive dispatches
  // share one configuration load, then the warp retires and reloads.
  bool resident = false;
  bool warp_hit = false;
  if (has_resident_ && resident_pc_ == config_pc) {
    if (resident_rev_ != config->revision) {
      drop_residency(stats, config_pc);
    } else if (mode != rra::ExecMode::kSimt) {
      resident = true;
    } else if (warp_fill_ < static_cast<uint32_t>(
                   config_.exec_mode.lanes > 0 ? config_.exec_mode.lanes : 1)) {
      resident = true;
      warp_hit = true;
    } else {
      ++stats.simt_warp_resets;
      warp_fill_ = 0;
    }
  }

  // Elastic deadlock fallback: a configuration whose bounded-FIFO handshake
  // graph is cyclic cannot fire elastically and executes row-synchronously.
  // The translator classifies at config-build time; entries arriving via
  // snapshot restore or warm-start preload carry no memo and are
  // classified lazily on first dispatch.
  bool elastic_fallback = false;
  if (mode == rra::ExecMode::kElastic) {
    if (config->elastic_memo < 0) {
      config->elastic_memo = exec_model_->admits(*config) ? 1 : 0;
    }
    elastic_fallback = config->elastic_memo == 0;
  }
  if (elastic_fallback) ++stats.elastic_deadlock_fallbacks;

  const rra::ArrayExecOutcome outcome =
      elastic_fallback
          ? rra::execute_configuration(*config, state_, memory_,
                                       &pipeline_.dcache(), config_.array_timing,
                                       resident)
          : exec_model_->execute(*config, state_, memory_, &pipeline_.dcache(),
                                 config_.array_timing, resident);

  ++stats.array_activations;
  stats.array_instructions += static_cast<uint64_t>(outcome.committed_ops);
  stats.instructions += static_cast<uint64_t>(outcome.committed_ops);
  array_cycle_acc_ += outcome.total_cycles();
  stats.array_exec_cycles += outcome.exec_cycles;
  stats.reconfig_stall_cycles += outcome.reconfig_stall_cycles;
  stats.array_dcache_stall_cycles += outcome.dcache_stall_cycles;
  stats.array_finalize_cycles += outcome.finalize_cycles;
  stats.misspec_penalty_cycles += outcome.misspec_penalty_cycles;
  stats.array_alu_ops += static_cast<uint64_t>(outcome.alu_ops);
  stats.array_mul_ops += static_cast<uint64_t>(outcome.mul_ops);
  stats.array_mem_ops += static_cast<uint64_t>(outcome.mem_ops);
  stats.fifo_stall_cycles += outcome.fifo_stall_cycles;
  // A resident dispatch skips the configuration-word reload entirely.
  if (warp_hit) {
    ++stats.simt_warp_hits;
  } else if (resident) {
    ++stats.residency_hits;
  } else {
    stats.config_words_loaded += static_cast<uint64_t>(config->instruction_count());
  }

  if (events_.enabled()) {
    obs::Event e;
    e.kind = obs::EventKind::kArrayActivation;
    e.config_pc = config_pc;
    e.ops = outcome.committed_ops;
    e.depth = outcome.committed_bbs;
    e.exec_cycles = outcome.exec_cycles;
    e.reconfig_stall_cycles = outcome.reconfig_stall_cycles;
    e.dcache_stall_cycles = outcome.dcache_stall_cycles;
    e.finalize_cycles = outcome.finalize_cycles;
    e.misspec_penalty_cycles = outcome.misspec_penalty_cycles;
    events_.emit(e);
  }
  if (resident && events_.enabled()) {
    obs::Event e;
    e.kind = warp_hit ? obs::EventKind::kSimtWarpHit : obs::EventKind::kResidencyHit;
    e.config_pc = config_pc;
    events_.emit(e);
  }

  // Update the bimodal counters with every branch the array resolved.
  for (const rra::BranchOutcome& b : outcome.branch_outcomes) {
    predictor_.update(b.pc, b.taken);
  }

  // Latch update — what the array holds after this dispatch. Done before the
  // misspeculation exit: a partially-committed run still loaded (or kept)
  // the configuration bits. Backward-closed configs resume at their own
  // start PC, which is what makes them loop-resident under kLoop. SIMT
  // latches unconditionally (the warp latch supersedes the residency knob)
  // and counts the dispatches served by the current load in warp_fill_.
  if (mode == rra::ExecMode::kSimt) {
    if (warp_hit) {
      ++warp_fill_;
    } else {
      uint32_t hi = config_pc;
      for (const rra::ArrayOp& op : config->ops) hi = std::max(hi, op.pc);
      has_resident_ = true;
      resident_pc_ = config_pc;
      resident_rev_ = config->revision;
      resident_lo_ = config_pc;
      resident_hi_ = hi + 4;
      warp_fill_ = 1;
    }
  } else {
    const bool latchable =
        config_.residency == Residency::kAny ||
        (config_.residency == Residency::kLoop && config->end_pc == config_pc);
    if (latchable) {
      if (!resident) {
        uint32_t hi = config_pc;
        for (const rra::ArrayOp& op : config->ops) hi = std::max(hi, op.pc);
        has_resident_ = true;
        resident_pc_ = config_pc;
        resident_rev_ = config->revision;
        resident_lo_ = config_pc;
        resident_hi_ = hi + 4;
      }
    } else {
      has_resident_ = false;
    }
  }

  // Self-modifying code from inside the array: a committed store into the
  // latched code range invalidates the residency (conservatively, by the
  // store bytes actually written).
  if (has_resident_ && outcome.wrote_memory && outcome.store_lo < resident_hi_ &&
      outcome.store_hi > resident_lo_) {
    drop_residency(stats, resident_pc_);
  }

  if (outcome.misspeculated) {
    ++stats.misspeculations;
    if (events_.enabled()) {
      obs::Event e;
      e.kind = obs::EventKind::kMisspeculation;
      e.config_pc = config_pc;
      e.branch_pc = outcome.misspec_branch_pc;
      e.depth = outcome.committed_bbs;
      events_.emit(e);
    }
    ++config->misspec_count;
    // Flush when the counter reached the opposite saturation for the
    // mispredicted direction, or after the safety cap.
    bool flush = config_.misspec_flush_threshold > 0 &&
                 config->misspec_count >= config_.misspec_flush_threshold;
    const auto dir = predictor_.saturated_direction(outcome.misspec_branch_pc);
    if (dir.has_value()) {
      for (const rra::ArrayOp& op : config->ops) {
        if (op.is_branch && op.pc == outcome.misspec_branch_pc &&
            op.predicted_taken != *dir) {
          flush = true;
          break;
        }
      }
    }
    if (flush) {
      rcache_->flush(config_pc);
      ++stats.config_flushes;
    }
    return;
  }

  // Fully committed. If the resume instruction is a conditional branch and
  // there is speculation depth left, arm the extension check: when that
  // branch retires we may merge its following basic block.
  if (config_.speculation && !config->no_extend &&
      config->num_bbs <= config_.max_spec_bbs) {
    const uint32_t word = memory_.read32(state_.pc);
    const isa::Instr next = decode_cache_.get(state_.pc, word);
    if (isa::is_branch(next.op)) {
      extension_candidate_ = true;
      extension_config_pc_ = config_pc;
      extension_branch_pc_ = state_.pc;
    }
  }
}

AccelStats AcceleratedSystem::run() {
  return run_until(std::numeric_limits<uint64_t>::max());
}

// Trace-dispatch env: reproduces the slow loop's per-retirement body —
// counters, pipeline retire, translator observation (with the software-BT
// cost charge) — and the loop-top rcache probe for trace-interior PCs.
// Event stamps read stats_.instructions / pipeline cycles, so the update
// order here must match the slow loop exactly.
struct AcceleratedSystem::TraceEnv {
  static constexpr bool kDispatchProbe = true;
  AcceleratedSystem* sys;
  AccelStats* stats;
  rra::Configuration* hit = nullptr;  // set when pre_dispatch stops the trace

  bool pre_dispatch(uint32_t pc) {
    if (sys->config_.array_enabled && !sys->translator_->extending()) {
      if (rra::Configuration* config = sys->rcache_->lookup(pc)) {
        hit = config;  // the caller dispatches it; re-probing would double-count
        return true;
      }
    }
    return false;
  }

  void retired(const sim::TraceOp& op, uint32_t next_pc, bool taken,
               bool mem_access, uint32_t mem_addr) {
    ++stats->instructions;
    ++stats->proc_instructions;
    sim::RetireRecord rec = op.rec;
    rec.mem_access = mem_access;
    rec.mem_addr = mem_addr;
    rec.taken = taken;
    sys->pipeline_.retire(rec);
    if (mem_access) ++stats->proc_mem_accesses;
    // Processor store into the resident code range (SMC): drop the latch.
    // Conservative 4-byte width — sub-word stores still hit their word.
    if (sys->has_resident_ && mem_access && isa::is_store(op.instr.op) &&
        mem_addr < sys->resident_hi_ && mem_addr + 4 > sys->resident_lo_) {
      sys->drop_residency(*stats, sys->resident_pc_);
    }

    sim::StepInfo info;
    info.instr = op.instr;
    info.pc = op.pc;
    info.next_pc = next_pc;
    info.is_branch = isa::is_branch(op.instr.op);
    info.taken = taken;
    info.mem_access = mem_access;
    info.mem_addr = mem_addr;
    info.halted = false;  // halting ops never enter a trace
    if (sys->config_.translation_cost_per_instr > 0) {
      const uint64_t words_before = sys->rcache_->words_written();
      sys->translator_->observe(info);
      const uint64_t inserted = sys->rcache_->words_written() - words_before;
      if (inserted > 0) {
        sys->pipeline_.charge(inserted * sys->config_.translation_cost_per_instr);
      }
    } else {
      sys->translator_->observe(info);
    }
  }
};

AccelStats AcceleratedSystem::run_until(uint64_t instruction_boundary) {
  AccelStats& stats = stats_;
  const uint64_t max_instructions = config_.machine.max_instructions;

  while (!state_.halted && stats.instructions < max_instructions &&
         stats.instructions < instruction_boundary) {
    // Probe the reconfiguration cache (unless an extension capture is in
    // flight — DIM must then observe the raw stream).
    if (config_.array_enabled && !translator_->extending()) {
      if (rra::Configuration* config = rcache_->lookup(state_.pc)) {
        execute_on_array(config, stats);
        continue;
      }
    }

    // Superblock fast path: the probe above missed, so this PC retires on
    // the core either way; a hot trace retires the whole straight-line run
    // in one call, probing the rcache before every interior PC exactly as
    // the loop top would. Skipped while an extension check is armed — that
    // state is consumed by the slow path's next retirement.
    if (config_.machine.host_trace_dispatch && !extension_candidate_) {
      const uint64_t limit = std::min(max_instructions, instruction_boundary);
      TraceEnv env{this, &stats};
      const sim::TraceExecResult res =
          trace_cache_.step_env(state_, memory_, limit - stats.instructions, env);
      if (res.dispatch_stop && env.hit != nullptr) {
        execute_on_array(env.hit, stats);
        continue;
      }
      if (res.executed > 0) continue;
    }

    const bool was_extension_candidate = extension_candidate_;
    extension_candidate_ = false;

    const sim::StepInfo info = sim::step(state_, memory_, &decode_cache_);
    ++stats.instructions;
    ++stats.proc_instructions;
    pipeline_.retire(info);
    if (info.mem_access) ++stats.proc_mem_accesses;
    // Mirror of TraceEnv::retired — SMC into the resident range drops the
    // latch regardless of which path retired the store.
    if (has_resident_ && info.mem_access && isa::is_store(info.instr.op) &&
        info.mem_addr < resident_hi_ && info.mem_addr + 4 > resident_lo_) {
      drop_residency(stats, resident_pc_);
    }

    // Extension: the branch at the end of a fully-committed configuration
    // just retired. If its counter is saturated in the direction it went,
    // the following basic block becomes part of the configuration.
    bool branch_absorbed_by_extension = false;
    if (was_extension_candidate && info.pc == extension_branch_pc_ &&
        isa::is_branch(info.instr.op)) {
      const auto dir = predictor_.saturated_direction(info.pc);
      if (dir.has_value() && *dir == info.taken) {
        // Bookkeeping access, not a dispatch: probe() keeps the hit count
        // equal to the number of array activations.
        if (rra::Configuration* config = rcache_->probe(extension_config_pc_)) {
          if (!translator_->begin_extension(*config, info.instr, info.pc, *dir)) {
            config->no_extend = true;
          } else {
            ++stats.extensions;
            // The branch is already part of the extension builder; observing
            // it again would merge a duplicate. Keep the predictor current.
            predictor_.update(info.pc, info.taken);
            branch_absorbed_by_extension = true;
          }
        }
      }
    }

    if (!branch_absorbed_by_extension) {
      if (config_.translation_cost_per_instr > 0) {
        // Software-BT emulation: inserting a configuration costs the
        // processor time proportional to its size.
        const uint64_t words_before = rcache_->words_written();
        translator_->observe(info);
        const uint64_t inserted = rcache_->words_written() - words_before;
        if (inserted > 0) {
          pipeline_.charge(inserted * config_.translation_cost_per_instr);
        }
      } else {
        translator_->observe(info);
      }
    }
  }

  // Derived fields are recomputed from the live components on every exit,
  // so they are correct both at a checkpoint boundary and at the end.
  stats.hit_limit = !state_.halted && stats.instructions >= max_instructions;
  stats.proc_cycles = pipeline_.cycles();
  stats.array_cycles = array_cycle_acc_;
  stats.cycles = stats.proc_cycles + stats.array_cycles;
  stats.rcache_hits = rcache_->hits();
  stats.rcache_misses = rcache_->misses();
  stats.rcache_insertions = rcache_->insertions();
  stats.rcache_evictions = rcache_->evictions();
  stats.bt_observed = translator_->stats().observed_instructions;
  stats.hammocks_merged = translator_->stats().hammocks_merged;
  stats.config_words_written = rcache_->words_written();
  stats.final_state = state_;
  stats.memory_hash = memory_.content_hash();
  return stats;
}

AccelStats run_accelerated(const asmblr::Program& program, const SystemConfig& config) {
  AcceleratedSystem system(program, config);
  return system.run();
}

AccelStats baseline_as_stats(const asmblr::Program& program,
                             const sim::MachineConfig& machine) {
  const sim::RunResult r = sim::run_baseline(program, machine);
  AccelStats stats;
  stats.instructions = r.instructions;
  stats.proc_instructions = r.instructions;
  stats.cycles = r.cycles;
  stats.proc_cycles = r.cycles;
  stats.proc_mem_accesses = r.mem_accesses;
  stats.hit_limit = r.hit_limit;
  stats.final_state = r.state;
  stats.memory_hash = r.memory_hash;
  return stats;
}

SpeedupResult measure_speedup(const asmblr::Program& program, const SystemConfig& config) {
  SpeedupResult result;
  result.baseline = baseline_as_stats(program, config.machine);
  result.accelerated = run_accelerated(program, config);
  return result;
}

}  // namespace dim::accel
