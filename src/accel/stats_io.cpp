#include "accel/stats_io.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>

namespace dim::accel {
namespace {

void field(std::ostream& out, const std::string& indent, const char* key,
           uint64_t value, bool comma = true) {
  out << indent << '"' << key << "\": " << value << (comma ? ",\n" : "\n");
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

void write_json_double(std::ostream& out, double value, int precision) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  out << std::setprecision(precision) << value;
}

void write_json_fields(std::ostream& out, const AccelStats& stats,
                       const std::string& indent) {
  field(out, indent, "instructions", stats.instructions);
  field(out, indent, "proc_instructions", stats.proc_instructions);
  field(out, indent, "array_instructions", stats.array_instructions);
  field(out, indent, "cycles", stats.cycles);
  field(out, indent, "proc_cycles", stats.proc_cycles);
  field(out, indent, "array_cycles", stats.array_cycles);
  field(out, indent, "array_exec_cycles", stats.array_exec_cycles);
  field(out, indent, "reconfig_stall_cycles", stats.reconfig_stall_cycles);
  field(out, indent, "array_dcache_stall_cycles", stats.array_dcache_stall_cycles);
  field(out, indent, "array_finalize_cycles", stats.array_finalize_cycles);
  field(out, indent, "misspec_penalty_cycles", stats.misspec_penalty_cycles);
  field(out, indent, "array_activations", stats.array_activations);
  field(out, indent, "misspeculations", stats.misspeculations);
  field(out, indent, "config_flushes", stats.config_flushes);
  field(out, indent, "extensions", stats.extensions);
  field(out, indent, "rcache_hits", stats.rcache_hits);
  field(out, indent, "rcache_misses", stats.rcache_misses);
  field(out, indent, "rcache_insertions", stats.rcache_insertions);
  field(out, indent, "rcache_evictions", stats.rcache_evictions);
  field(out, indent, "hammocks_merged", stats.hammocks_merged);
  field(out, indent, "residency_hits", stats.residency_hits);
  field(out, indent, "residency_drops", stats.residency_drops);
  field(out, indent, "fifo_stall_cycles", stats.fifo_stall_cycles);
  field(out, indent, "elastic_deadlock_fallbacks", stats.elastic_deadlock_fallbacks);
  field(out, indent, "simt_warp_hits", stats.simt_warp_hits);
  field(out, indent, "simt_warp_resets", stats.simt_warp_resets);
  field(out, indent, "array_alu_ops", stats.array_alu_ops);
  field(out, indent, "array_mul_ops", stats.array_mul_ops);
  field(out, indent, "array_mem_ops", stats.array_mem_ops);
  field(out, indent, "proc_mem_accesses", stats.proc_mem_accesses);
  field(out, indent, "config_words_loaded", stats.config_words_loaded);
  field(out, indent, "config_words_written", stats.config_words_written);
  field(out, indent, "hit_limit", stats.hit_limit ? 1 : 0);
  out << indent << "\"ipc\": ";
  write_json_double(out, stats.ipc());
  out << ",\n" << indent << "\"array_coverage\": ";
  write_json_double(out, stats.array_coverage());
  out << "\n";
}

void write_json(std::ostream& out, const AccelStats& stats, const std::string& label) {
  out << "{\n";
  if (!label.empty()) out << "  \"label\": \"" << json_escape(label) << "\",\n";
  write_json_fields(out, stats, "  ");
  out << "}\n";
}

void write_report(std::ostream& out, const AccelStats& stats) {
  out << "instructions: " << stats.instructions << " (" << stats.proc_instructions
      << " on processor, " << stats.array_instructions << " on array, "
      << std::setprecision(3) << 100.0 * stats.array_coverage() << "% coverage)\n";
  out << "cycles:       " << stats.cycles << " (" << stats.proc_cycles << " processor + "
      << stats.array_cycles << " array)\n";
  out << "array cycles: " << stats.array_exec_cycles << " exec + "
      << stats.reconfig_stall_cycles << " reconfig stalls + "
      << stats.array_dcache_stall_cycles << " dcache stalls + "
      << stats.array_finalize_cycles << " finalize + "
      << stats.misspec_penalty_cycles << " misspec penalties\n";
  out << "array:        " << stats.array_activations << " activations, "
      << stats.misspeculations << " misspeculations, " << stats.config_flushes
      << " flushes, " << stats.extensions << " extensions\n";
  if (stats.hammocks_merged > 0 || stats.residency_hits > 0 || stats.residency_drops > 0) {
    out << "control flow: " << stats.hammocks_merged << " hammocks merged, "
        << stats.residency_hits << " residency hits, " << stats.residency_drops
        << " residency drops\n";
  }
  if (stats.fifo_stall_cycles > 0 || stats.elastic_deadlock_fallbacks > 0 ||
      stats.simt_warp_hits > 0 || stats.simt_warp_resets > 0) {
    out << "exec mode:    " << stats.fifo_stall_cycles << " fifo stalls, "
        << stats.elastic_deadlock_fallbacks << " deadlock fallbacks, "
        << stats.simt_warp_hits << " warp hits, " << stats.simt_warp_resets
        << " warp resets\n";
  }
  out << "rcache:       " << stats.rcache_insertions << " insertions, "
      << stats.rcache_evictions << " evictions, " << stats.rcache_hits << " hits\n";
  out << "ipc:          " << std::setprecision(4) << stats.ipc() << "\n";
}

}  // namespace dim::accel
