// Serialization of run statistics: JSON (for downstream analysis scripts)
// and a human-readable summary.
#pragma once

#include <ostream>
#include <string>

#include "accel/stats.hpp"

namespace dim::accel {

// Writes `stats` as a single JSON object. Keys are stable API.
void write_json(std::ostream& out, const AccelStats& stats,
                const std::string& label = "");

// Multi-line human-readable report.
void write_report(std::ostream& out, const AccelStats& stats);

}  // namespace dim::accel
