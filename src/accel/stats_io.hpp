// Serialization of run statistics: JSON (for downstream analysis scripts)
// and a human-readable summary.
#pragma once

#include <ostream>
#include <string>

#include "accel/stats.hpp"

namespace dim::accel {

// Writes `stats` as a single JSON object. Keys are stable API.
void write_json(std::ostream& out, const AccelStats& stats,
                const std::string& label = "");

// Writes the key/value body of `stats` (everything between the braces,
// one "<indent>\"key\": value" line per field). Shared by write_json and
// the sweep-engine serializer so every consumer sees exactly one schema.
void write_json_fields(std::ostream& out, const AccelStats& stats,
                       const std::string& indent);

// Minimal JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

// Writes a double as a JSON number. JSON has no representation for
// inf/nan — a bare `inf` (what operator<< would print) poisons the whole
// document — so non-finite values are encoded as null. Every double in a
// dimsim JSON document goes through here (e.g. a speedup whose divisor is
// the zero cycle count of a zero-budget request).
void write_json_double(std::ostream& out, double value, int precision = 6);

// Multi-line human-readable report.
void write_report(std::ostream& out, const AccelStats& stats);

}  // namespace dim::accel
