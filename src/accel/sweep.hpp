// Thread-pooled batch runner for design-space sweeps.
//
// The paper's results (Table 2, Fig. 5/6 and every ablation) are grids of
// (workload x array-shape x cache-size x speculation) points; each point is
// an independent AcceleratedSystem run. SweepEngine executes a grid across
// worker threads — one private system instance per point, no shared mutable
// state — and returns the results ordered by point index, so the aggregated
// output (including its JSON serialization) is byte-identical regardless of
// thread count or completion order. See docs/sweep-engine.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/stats.hpp"
#include "accel/system.hpp"
#include "asm/program.hpp"
#include "obs/profile.hpp"

namespace dim::accel {

// One grid point: a program plus the system configuration to run it under.
struct SweepPoint {
  std::string label;  // carried into the result and its JSON record
  // Not owned; must outlive SweepEngine::run. Programs are read-only during
  // the sweep (each system copies the image into its private memory).
  const asmblr::Program* program = nullptr;
  SystemConfig config;
  // Baseline for the speedup column: either a precomputed AccelStats (not
  // owned; e.g. shared across every point of one workload) or, when null
  // with run_baseline set, a plain-MIPS run executed inside the worker.
  const AccelStats* baseline = nullptr;
  bool run_baseline = false;
};

struct SweepResult {
  size_t index = 0;  // == position of the originating point in the grid
  std::string label;
  AccelStats accelerated;
  AccelStats baseline;
  bool has_baseline = false;
  // Transparency check (only meaningful with a baseline): identical
  // program output and final memory image.
  bool transparent = true;
  // Per-configuration event summary of the accelerated run (only with
  // SweepOptions::collect_profiles; folded by a worker-private sink, so
  // it is identical for any thread count).
  obs::ProfileTable profile;
  bool has_profile = false;

  double speedup() const {
    return (!has_baseline || accelerated.cycles == 0)
               ? 0.0
               : static_cast<double>(baseline.cycles) /
                     static_cast<double>(accelerated.cycles);
  }
};

// Memoization hook for sweep cells. A store that recognizes a point (by
// whatever identity it derives from the point — snap::ResultStore keys on
// program hash + system fingerprint + a code version) fills the result
// without the worker simulating anything; freshly computed results are
// offered back. Implementations must be safe to call from multiple worker
// threads concurrently. A loaded result must be exactly what run would
// have produced — the engine does not re-verify.
class ResultCache {
 public:
  virtual ~ResultCache() = default;
  // True on hit: `out` is filled completely except `index` and `label`,
  // which the engine re-stamps from the live point (presentation fields,
  // not part of the cell identity).
  virtual bool load(const SweepPoint& point, bool collect_profiles,
                    SweepResult& out) = 0;
  virtual void store(const SweepPoint& point, bool collect_profiles,
                     const SweepResult& result) = 0;
};

struct SweepOptions {
  unsigned threads = 0;  // 0 = std::thread::hardware_concurrency()
  // Collect a per-point obs::ProfileTable (configuration-lifecycle event
  // summary) for every accelerated run. Each worker attaches its own
  // ProfilingSink — any event_sink set on a point's SystemConfig is
  // overridden while collecting, so no sink is ever shared across threads.
  bool collect_profiles = false;
  // Optional persistent cell memoization (not owned; must outlive run()).
  // Results are byte-identical with the cache enabled, disabled, or shared
  // across runs and thread counts — it only skips redundant simulation.
  ResultCache* result_cache = nullptr;
  // Cooperative cancellation (not owned; must outlive run()). Observed
  // between points: once set, no new point is started and run() throws
  // SweepCanceled after every in-flight point finished. Cancellation is
  // best-effort by design — a point already executing runs to completion.
  const std::atomic<bool>* cancel = nullptr;
};

// Thrown by SweepEngine::run when SweepOptions::cancel was observed set
// before the grid completed. Partial results are discarded.
class SweepCanceled : public std::runtime_error {
 public:
  SweepCanceled() : std::runtime_error("sweep canceled") {}
};

class SweepEngine {
 public:
  explicit SweepEngine(SweepOptions options = {});

  // Runs every point to completion. results[i] always corresponds to
  // points[i]; worker scheduling never shows through. Exceptions thrown by
  // a worker (e.g. a buggy workload asserting) are rethrown here after all
  // threads joined; when several points throw, the exception from the
  // LOWEST point index is the one rethrown, so the error a caller sees is
  // independent of worker scheduling. Throws SweepCanceled when
  // SweepOptions::cancel fired first (a real point error always wins over
  // cancellation).
  std::vector<SweepResult> run(const std::vector<SweepPoint>& points) const;

  unsigned threads() const { return threads_; }
  bool collect_profiles() const { return options_.collect_profiles; }

 private:
  SweepOptions options_;
  unsigned threads_;
};

// Serializes a sweep as one JSON document:
//   {"points": [ {"label": ..., "speedup": ..., "transparent": ...,
//                 "accelerated": {<stats_io schema>},
//                 "baseline": {<stats_io schema>}?}, ... ]}
// Per-point stats use accel::write_json_fields, so the record schema is
// identical to the single-run write_json output. Deterministic: depends
// only on the results vector.
void write_sweep_json(std::ostream& out, const std::vector<SweepResult>& results);

// Merges every per-point profile into one table. Profiles are summed, so
// the aggregate (and its obs::write_profile_json serialization) is
// byte-identical for any worker count.
obs::ProfileTable aggregate_profiles(const std::vector<SweepResult>& results);

}  // namespace dim::accel
