// The complete system of the paper: MIPS core + DIM binary translator +
// reconfigurable array + reconfiguration cache + bimodal speculation.
//
// Per retired PC the reconfiguration cache is probed; on a hit the array is
// reconfigured (overlapped with the pipeline front-end), executes the
// translated sequence as a functional unit, writes results back and bumps
// the PC past the sequence. On a miss the instruction goes through the
// normal pipeline while DIM observes it.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "asm/program.hpp"
#include "bt/predictor.hpp"
#include "bt/rcache.hpp"
#include "bt/translator.hpp"
#include "accel/stats.hpp"
#include "mem/memory.hpp"
#include "obs/event.hpp"
#include "rra/array_exec.hpp"
#include "rra/array_shape.hpp"
#include "rra/exec_mode/execution_model.hpp"
#include "sim/executor.hpp"
#include "sim/machine.hpp"
#include "sim/pipeline.hpp"

namespace dim::snap {
struct SystemAccess;  // snapshot serializer (snap/snapshot.cpp)
}

namespace dim::accel {

// Loop-residency policy: which fully-committed configurations may stay
// latched on the array across dispatches. A resident re-dispatch skips the
// configuration-word reload (rra::resident_stall_cycles); timing only —
// architectural state is identical with residency on or off.
enum class Residency : uint8_t {
  kOff,   // every dispatch reloads the configuration (paper default)
  kLoop,  // only backward-branch-closed configs (end_pc == start_pc)
  kAny,   // any fully-committed configuration stays latched
};

struct SystemConfig {
  sim::MachineConfig machine;          // baseline core timing + run limits
  rra::ArrayShape shape = rra::ArrayShape::config1();
  rra::ArrayTimingParams array_timing;
  size_t cache_slots = 64;
  bt::Replacement cache_replacement = bt::Replacement::kFifo;  // paper: FIFO
  bool speculation = true;
  int max_spec_bbs = 3;  // speculative blocks beyond the first (see TranslatorParams)
  int min_instructions = 4;
  // Related-work emulation (see bt::TranslatorParams): CCA-style FU
  // restrictions and warp-style kernel-only translation.
  bool allow_mem = true;
  bool allow_shifts = true;
  bool allow_mult = true;
  int max_input_regs = rra::kNumCtxRegs;
  int max_output_regs = rra::kNumCtxRegs;
  std::unordered_set<uint32_t> allowed_starts;
  // If-conversion (see bt::TranslatorParams): merge short hammocks into one
  // configuration under predicate bits instead of speculating the branch.
  bool predication = false;
  int max_hammock_ops = 4;
  int max_pred_slots = rra::kMaxPredSlots;
  // Loop residency (see enum above). Strictly a timing knob.
  Residency residency = Residency::kOff;
  // Array execution personality (src/rra/exec_mode/): row-sync (paper),
  // elastic dataflow, or SIMT multi-lane issue. Strictly a timing/stats
  // knob — the transparency contract holds for every mode. Under SIMT the
  // warp latch supersedes the residency knob (latching IS the personality).
  rra::ExecModeParams exec_mode;
  // A configuration is flushed when its mispredicted branch reaches the
  // opposite counter saturation (paper rule). Optionally also after this
  // many misspeculations (0 = disabled; kept for the ablation bench — a
  // small cap destroys loop configurations on every loop exit).
  int misspec_flush_threshold = 0;
  // Cycles charged to the processor per translated instruction when a
  // configuration is inserted. 0 = the paper's hardware DIM (translation
  // runs in parallel, free). Nonzero emulates software binary translation
  // (warp-processing-style CAD) — see bench_ablation_btcost.
  uint64_t translation_cost_per_instr = 0;
  bool array_enabled = true;  // false = plain baseline run (for A/B tests)
  // Planted translator bug for fuzzer self-tests (bt::FaultInjection);
  // kNone outside tests.
  bt::FaultInjection fault_injection = bt::FaultInjection::kNone;
  // Configuration-lifecycle event tracing (see obs/event.hpp). Not owned;
  // must outlive the system. Null (the default) disables tracing at the
  // cost of one pointer test per event site — observation only, so the
  // simulated cycle/instruction counts are identical either way.
  obs::EventSink* event_sink = nullptr;

  static SystemConfig with(const rra::ArrayShape& s, size_t slots, bool spec) {
    SystemConfig c;
    c.shape = s;
    c.cache_slots = slots;
    c.speculation = spec;
    return c;
  }
};

class AcceleratedSystem : private obs::RunClock {
 public:
  AcceleratedSystem(const asmblr::Program& program, const SystemConfig& config);
  ~AcceleratedSystem();

  // Runs to halt or the configured instruction limit. Statistics live in
  // the system and accumulate across calls, so run() after run_until() is
  // exactly the continuation of the same run.
  AccelStats run();

  // Runs until halt, the configured limit, or `instruction_boundary`
  // committed instructions — whichever comes first — and returns the
  // statistics so far. A run stopped here and then continued (run() /
  // run_until()) retires the identical instruction stream, cycle for
  // cycle, as one uninterrupted run: the loop merely pauses between two
  // retirements. This is the checkpoint hook of snap/snapshot.hpp —
  // stop at a boundary, save_snapshot, and a restored system continues
  // bit-identically (pinned by the resume-equals-straight-run oracle in
  // tests/test_snapshot.cpp). The boundary can be overshot by one array
  // activation, which commits a whole translated sequence at once.
  AccelStats run_until(uint64_t instruction_boundary);

  // Statistics accumulated so far (the counters the next run_until
  // continues from; derived fields are refreshed on every run_until exit).
  const AccelStats& stats() const { return stats_; }

  // Introspection for tests.
  bt::ReconfigCache& rcache() { return *rcache_; }
  bt::BimodalPredictor& predictor() { return predictor_; }
  sim::CpuState& state() { return state_; }
  mem::Memory& memory() { return memory_; }
  const sim::TraceCache& trace_cache() const { return trace_cache_; }

 private:
  friend struct snap::SystemAccess;  // checkpoint save/restore

  // Per-op hooks the superblock trace engine calls so a trace-dispatched
  // stretch retires exactly like the slow loop (defined in system.cpp).
  struct TraceEnv;

  void execute_on_array(rra::Configuration* config, AccelStats& stats);

  // Drops the residency latch (SMC overwrite or config rewrite detected):
  // clears the latch, counts the drop and emits kResidencyDropped for `pc`.
  void drop_residency(AccelStats& stats, uint32_t pc);

  // obs::RunClock — the stamp every emitted event carries.
  uint64_t retired_instructions() const override { return stats_.instructions; }
  uint64_t clock_proc_cycles() const override { return pipeline_.cycles(); }
  uint64_t clock_array_cycles() const override { return array_cycle_acc_; }

  SystemConfig config_;
  mem::Memory memory_;
  sim::CpuState state_;
  sim::PipelineModel pipeline_;
  sim::DecodeCache decode_cache_;  // host-side fetch/decode memoization
  sim::TraceCache trace_cache_;    // host-side superblock fast path
  bt::BimodalPredictor predictor_;
  std::unique_ptr<bt::ReconfigCache> rcache_;
  std::unique_ptr<bt::Translator> translator_;

  // Speculation-extension bookkeeping: set after a fully-committed array
  // execution whose resume instruction is a conditional branch.
  bool extension_candidate_ = false;
  uint32_t extension_config_pc_ = 0;
  uint32_t extension_branch_pc_ = 0;

  // Loop-residency latch: the configuration currently held on the array.
  // Valid only while the cached entry's revision still matches (the rcache
  // stamps every write); resident_lo_/hi_ cover the translated code bytes
  // so stores into them (SMC) drop the latch.
  bool has_resident_ = false;
  uint32_t resident_pc_ = 0;
  uint64_t resident_rev_ = 0;
  uint32_t resident_lo_ = 0;
  uint32_t resident_hi_ = 0;  // exclusive

  // SIMT warp fill: dispatches served by the currently latched
  // configuration (reuses the residency latch above). When it reaches
  // `exec_mode.lanes` the warp retires and the next dispatch reloads.
  uint32_t warp_fill_ = 0;

  // The active execution personality (never null; row-sync by default).
  std::unique_ptr<rra::ExecutionModel> exec_model_;

  uint64_t array_cycle_acc_ = 0;  // array cycles (outside the pipeline model)

  // The run's live counters (event stamps read instructions from here).
  AccelStats stats_;

  // Event tracing: stamped stream shared with the translator and rcache;
  // points at config_.event_sink (null = off).
  obs::EventStream events_;
};

// Runs `program` both on the plain MIPS and on MIPS+DIM+array with the same
// core timing; the pair is what every speedup figure reports.
struct SpeedupResult {
  AccelStats baseline;
  AccelStats accelerated;
  double speedup() const {
    return accelerated.cycles == 0
               ? 0.0
               : static_cast<double>(baseline.cycles) / static_cast<double>(accelerated.cycles);
  }
};

AccelStats run_accelerated(const asmblr::Program& program, const SystemConfig& config);
AccelStats baseline_as_stats(const asmblr::Program& program,
                             const sim::MachineConfig& machine);
SpeedupResult measure_speedup(const asmblr::Program& program, const SystemConfig& config);

}  // namespace dim::accel
