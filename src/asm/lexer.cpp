#include "asm/lexer.hpp"

#include "asm/assembler.hpp"

namespace dim::asmblr {
namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '.';
}

bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}

char unescape(char c, int line_no) {
  switch (c) {
    case 'n': return '\n';
    case 't': return '\t';
    case 'r': return '\r';
    case '0': return '\0';
    case '\\': return '\\';
    case '"': return '"';
    case '\'': return '\'';
    default:
      throw AsmError(line_no, std::string("unknown escape: \\") + c);
  }
}

}  // namespace

std::vector<Token> lex_line(std::string_view line, int line_no) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = line.size();

  auto push = [&](TokKind kind, std::string text, int64_t value, size_t col) {
    out.push_back(Token{kind, std::move(text), value, static_cast<int>(col)});
  };

  while (i < n) {
    const char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') break;
    if (c == '/' && i + 1 < n && line[i + 1] == '/') break;

    const size_t start = i;
    if (c == ',') { push(TokKind::kComma, ",", 0, start); ++i; continue; }
    if (c == '(') { push(TokKind::kLParen, "(", 0, start); ++i; continue; }
    if (c == ')') { push(TokKind::kRParen, ")", 0, start); ++i; continue; }
    if (c == ':') { push(TokKind::kColon, ":", 0, start); ++i; continue; }
    if (c == '+') { push(TokKind::kPlus, "+", 0, start); ++i; continue; }

    if (c == '$') {
      ++i;
      while (i < n && is_ident_char(line[i])) ++i;
      push(TokKind::kReg, std::string(line.substr(start, i - start)), 0, start);
      continue;
    }

    if (c == '\'') {
      if (i + 2 >= n) throw AsmError(line_no, "unterminated char literal");
      char value;
      if (line[i + 1] == '\\') {
        if (i + 3 >= n || line[i + 3] != '\'') throw AsmError(line_no, "bad char literal");
        value = unescape(line[i + 2], line_no);
        i += 4;
      } else {
        if (line[i + 2] != '\'') throw AsmError(line_no, "bad char literal");
        value = line[i + 1];
        i += 3;
      }
      push(TokKind::kNumber, "", static_cast<unsigned char>(value), start);
      continue;
    }

    if (c == '"') {
      std::string text;
      ++i;
      while (i < n && line[i] != '"') {
        if (line[i] == '\\') {
          if (i + 1 >= n) throw AsmError(line_no, "unterminated string");
          text.push_back(unescape(line[i + 1], line_no));
          i += 2;
        } else {
          text.push_back(line[i]);
          ++i;
        }
      }
      if (i >= n) throw AsmError(line_no, "unterminated string");
      ++i;  // closing quote
      push(TokKind::kString, std::move(text), 0, start);
      continue;
    }

    const bool neg = (c == '-');
    if (neg || (c >= '0' && c <= '9')) {
      size_t j = i + (neg ? 1 : 0);
      if (j >= n || line[j] < '0' || line[j] > '9') {
        if (neg) { push(TokKind::kMinus, "-", 0, start); ++i; continue; }
      }
      int64_t value = 0;
      if (j + 1 < n && line[j] == '0' && (line[j + 1] == 'x' || line[j + 1] == 'X')) {
        j += 2;
        if (j >= n) throw AsmError(line_no, "bad hex literal");
        while (j < n) {
          const char h = line[j];
          int digit;
          if (h >= '0' && h <= '9') digit = h - '0';
          else if (h >= 'a' && h <= 'f') digit = h - 'a' + 10;
          else if (h >= 'A' && h <= 'F') digit = h - 'A' + 10;
          else break;
          value = value * 16 + digit;
          ++j;
        }
      } else {
        while (j < n && line[j] >= '0' && line[j] <= '9') {
          value = value * 10 + (line[j] - '0');
          ++j;
        }
      }
      i = j;
      push(TokKind::kNumber, "", neg ? -value : value, start);
      continue;
    }

    if (is_ident_start(c)) {
      ++i;
      while (i < n && is_ident_char(line[i])) ++i;
      push(TokKind::kIdent, std::string(line.substr(start, i - start)), 0, start);
      continue;
    }

    throw AsmError(line_no, std::string("unexpected character: ") + c);
  }

  push(TokKind::kEnd, "", 0, n);
  return out;
}

}  // namespace dim::asmblr
