// Line-oriented tokenizer for the MIPS assembler.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dim::asmblr {

enum class TokKind : uint8_t {
  kIdent,     // labels, mnemonics, directives (".word" has the dot included)
  kReg,       // $t0, $3, ...
  kNumber,    // decimal, hex (0x..), negative, char literal 'a'
  kString,    // "..." with C escapes
  kComma,
  kLParen,
  kRParen,
  kColon,
  kPlus,
  kMinus,
  kEnd,       // end of line
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;   // for idents/regs/strings
  int64_t value = 0;  // for numbers
  int column = 0;
};

// Tokenizes one source line. Throws AsmError (see assembler.hpp) on bad input.
std::vector<Token> lex_line(std::string_view line, int line_no);

}  // namespace dim::asmblr
