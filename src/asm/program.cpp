#include "asm/program.hpp"

#include <stdexcept>

namespace dim::asmblr {

void Program::load_into(mem::Memory& memory) const {
  for (const Segment& seg : segments) {
    memory.write_block(seg.base, seg.bytes.data(), seg.bytes.size());
  }
}

uint32_t Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) {
    throw std::out_of_range("undefined symbol: " + name);
  }
  return it->second;
}

size_t Program::image_bytes() const {
  size_t total = 0;
  for (const Segment& seg : segments) total += seg.bytes.size();
  return total;
}

}  // namespace dim::asmblr
