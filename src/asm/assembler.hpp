// Two-pass MIPS I assembler.
//
// Supported syntax:
//   - sections: .text [addr], .data [addr]
//   - data directives: .word, .half, .byte, .asciiz, .ascii, .space, .align
//   - labels ("name:"), label±offset operands
//   - every MIPS I integer instruction (see isa/instruction.hpp)
//   - pseudo-instructions: nop, move, li, la, b, beqz, bnez, neg, not,
//     blt/ble/bgt/bge (+ unsigned u-variants), mul (mult+mflo), subi/subiu,
//     seq-style comparisons are not provided (use slt/slti directly)
//
// Comments start with '#' or "//" and run to end of line.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "asm/program.hpp"

namespace dim::asmblr {

class AsmError : public std::runtime_error {
 public:
  AsmError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct AsmOptions {
  uint32_t text_base = 0x00400000;
  uint32_t data_base = 0x10010000;
};

// Assembles `source`. The program entry point is the "main" label if
// defined, else the start of .text. Throws AsmError on the first error.
Program assemble(std::string_view source, const AsmOptions& options = {});

}  // namespace dim::asmblr
