// Assembled program image: segments of bytes plus a symbol table.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/memory.hpp"

namespace dim::asmblr {

struct Segment {
  uint32_t base = 0;
  std::vector<uint8_t> bytes;
};

struct Program {
  uint32_t entry = 0;
  std::vector<Segment> segments;
  std::unordered_map<std::string, uint32_t> symbols;

  void load_into(mem::Memory& memory) const;

  // Looks up a symbol; throws std::out_of_range if missing.
  uint32_t symbol(const std::string& name) const;

  // Total number of instruction/data bytes in the image.
  size_t image_bytes() const;
};

}  // namespace dim::asmblr
