#include "asm/assembler.hpp"

#include <cassert>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "asm/lexer.hpp"
#include "common/bitutil.hpp"
#include "isa/encoder.hpp"
#include "isa/instruction.hpp"
#include "isa/registers.hpp"

namespace dim::asmblr {
namespace {

using isa::Instr;
using isa::Op;

// --- Parsed operand ---------------------------------------------------------

struct Operand {
  enum class Kind { kReg, kImm, kSym, kMem } kind = Kind::kImm;
  int reg = 0;           // kReg / kMem base register
  int64_t value = 0;     // kImm / symbol offset / kMem displacement
  std::string symbol;    // kSym, or kMem symbolic displacement

  bool is_reg() const { return kind == Kind::kReg; }
  bool is_imm() const { return kind == Kind::kImm; }
  bool is_sym() const { return kind == Kind::kSym; }
  bool is_mem() const { return kind == Kind::kMem; }
};

struct Statement {
  int line_no = 0;
  int section = 0;  // 0 = text, 1 = data
  uint32_t addr = 0;
  std::string mnemonic;  // lower-case instruction or directive (with '.')
  std::vector<Operand> operands;
  std::vector<std::string> strings;  // for .ascii/.asciiz
  uint32_t size_bytes = 0;
};

// --- Mnemonic tables --------------------------------------------------------

const std::unordered_map<std::string, Op>& op_table() {
  static const std::unordered_map<std::string, Op> table = [] {
    std::unordered_map<std::string, Op> t;
    for (int raw = 1; raw <= static_cast<int>(Op::kSw); ++raw) {
      const Op op = static_cast<Op>(raw);
      t.emplace(isa::op_name(op), op);
    }
    return t;
  }();
  return table;
}

bool is_directive(const std::string& m) { return !m.empty() && m[0] == '.'; }

// Size in bytes of one pseudo/real instruction, decided in pass 1.
uint32_t instr_size(const Statement& s) {
  const std::string& m = s.mnemonic;
  if (m == "la") return 8;
  if (m == "li") {
    const int64_t v = s.operands.size() >= 2 ? s.operands[1].value : 0;
    return (fits_simm16(v) || fits_uimm16(v)) ? 4 : 8;
  }
  if (m == "blt" || m == "bgt" || m == "ble" || m == "bge" ||
      m == "bltu" || m == "bgtu" || m == "bleu" || m == "bgeu" ||
      m == "mul") {
    return 8;
  }
  return 4;
}

// --- Assembler proper -------------------------------------------------------

class Assembler {
 public:
  explicit Assembler(const AsmOptions& options)
      : options_(options),
        text_base_(options.text_base),
        data_base_(options.data_base),
        text_loc_(options.text_base),
        data_loc_(options.data_base) {}

  Program run(std::string_view source) {
    parse_all(source);
    emit_all();
    Program p;
    p.symbols = symbols_;
    if (auto it = symbols_.find("main"); it != symbols_.end()) {
      p.entry = it->second;
    } else {
      p.entry = text_base_;
    }
    p.segments.push_back(Segment{text_base_, std::move(text_)});
    p.segments.push_back(Segment{data_base_, std::move(data_)});
    return p;
  }

 private:
  // ---- pass 1: parse + layout ----
  void parse_all(std::string_view source) {
    int line_no = 0;
    size_t pos = 0;
    while (pos <= source.size()) {
      const size_t nl = source.find('\n', pos);
      const std::string_view line =
          source.substr(pos, nl == std::string_view::npos ? source.size() - pos : nl - pos);
      ++line_no;
      parse_line(line, line_no);
      if (nl == std::string_view::npos) break;
      pos = nl + 1;
    }
  }

  uint32_t& loc() { return section_ == 0 ? text_loc_ : data_loc_; }

  void define_label_at(const std::string& name, uint32_t addr, int line_no) {
    if (symbols_.count(name)) throw AsmError(line_no, "duplicate label: " + name);
    symbols_[name] = addr;
  }

  void define_label(const std::string& name, int line_no) {
    define_label_at(name, loc(), line_no);
  }

  void align_to(uint32_t alignment) {
    uint32_t& l = loc();
    l = (l + alignment - 1) & ~(alignment - 1);
  }

  void parse_line(std::string_view line, int line_no) {
    std::vector<Token> toks = lex_line(line, line_no);
    size_t i = 0;

    // Leading labels ("name:") — bound after the statement's alignment so
    // `h: .half ...` names the aligned datum.
    std::vector<std::string> labels;
    while (toks[i].kind == TokKind::kIdent && toks[i + 1].kind == TokKind::kColon) {
      labels.push_back(toks[i].text);
      i += 2;
    }
    auto bind_labels = [&] {
      for (const std::string& name : labels) define_label(name, line_no);
      labels.clear();
    };

    if (toks[i].kind == TokKind::kEnd) {
      bind_labels();  // label-only line: current location counter
      return;
    }
    if (toks[i].kind != TokKind::kIdent) throw AsmError(line_no, "expected mnemonic");

    Statement s;
    s.line_no = line_no;
    s.mnemonic = toks[i].text;
    for (char& c : s.mnemonic) c = static_cast<char>(tolower(c));
    ++i;

    parse_operands(toks, i, s, line_no);

    if (is_directive(s.mnemonic)) {
      // Section switches see labels bound in the *current* section first.
      if (s.mnemonic == ".text" || s.mnemonic == ".data") bind_labels();
      const uint32_t addr = layout_directive(s, line_no);
      for (const std::string& name : labels) define_label_at(name, addr, line_no);
      labels.clear();
      return;
    }

    if (section_ != 0) throw AsmError(line_no, "instruction outside .text");
    align_to(4);
    s.section = 0;
    s.addr = loc();
    bind_labels();
    s.size_bytes = instr_size(s);
    loc() += s.size_bytes;
    statements_.push_back(std::move(s));
  }

  void parse_operands(const std::vector<Token>& toks, size_t i, Statement& s, int line_no) {
    while (toks[i].kind != TokKind::kEnd) {
      Operand op;
      const Token& t = toks[i];
      if (t.kind == TokKind::kReg) {
        auto r = isa::parse_reg(t.text);
        if (!r) throw AsmError(line_no, "bad register: " + t.text);
        op.kind = Operand::Kind::kReg;
        op.reg = *r;
        ++i;
      } else if (t.kind == TokKind::kNumber || t.kind == TokKind::kIdent ||
                 t.kind == TokKind::kLParen) {
        int64_t disp = 0;
        std::string sym;
        if (t.kind == TokKind::kNumber) {
          disp = t.value;
          ++i;
        } else if (t.kind == TokKind::kIdent) {
          sym = t.text;
          ++i;
          if (toks[i].kind == TokKind::kPlus || toks[i].kind == TokKind::kMinus) {
            const bool minus = toks[i].kind == TokKind::kMinus;
            ++i;
            if (toks[i].kind != TokKind::kNumber)
              throw AsmError(line_no, "expected number after +/-");
            disp = minus ? -toks[i].value : toks[i].value;
            ++i;
          }
        }
        if (toks[i].kind == TokKind::kLParen) {
          ++i;
          if (toks[i].kind != TokKind::kReg) throw AsmError(line_no, "expected base register");
          auto r = isa::parse_reg(toks[i].text);
          if (!r) throw AsmError(line_no, "bad register: " + toks[i].text);
          ++i;
          if (toks[i].kind != TokKind::kRParen) throw AsmError(line_no, "expected ')'");
          ++i;
          op.kind = Operand::Kind::kMem;
          op.reg = *r;
          op.value = disp;
          op.symbol = sym;
        } else if (!sym.empty()) {
          op.kind = Operand::Kind::kSym;
          op.symbol = sym;
          op.value = disp;
        } else {
          op.kind = Operand::Kind::kImm;
          op.value = disp;
        }
      } else if (t.kind == TokKind::kString) {
        s.strings.push_back(t.text);
        ++i;
        if (toks[i].kind == TokKind::kComma) ++i;
        continue;
      } else {
        throw AsmError(line_no, "unexpected token in operands");
      }
      s.operands.push_back(std::move(op));
      if (toks[i].kind == TokKind::kComma) ++i;
    }
  }

  // Lays out one directive; returns the address its labels should bind to
  // (the aligned statement address for sized directives, the post-align
  // location for .align, the current location otherwise).
  uint32_t layout_directive(Statement& s, int line_no) {
    const std::string& m = s.mnemonic;
    if (m == ".text") {
      section_ = 0;
      if (!s.operands.empty()) {
        text_loc_ = static_cast<uint32_t>(s.operands[0].value);
        if (text_loc_ < text_base_) text_base_ = text_loc_;
      }
      return loc();
    }
    if (m == ".data") {
      section_ = 1;
      if (!s.operands.empty()) {
        data_loc_ = static_cast<uint32_t>(s.operands[0].value);
        if (data_loc_ < data_base_) data_base_ = data_loc_;
      }
      return loc();
    }
    if (m == ".globl" || m == ".global" || m == ".ent" || m == ".end") return loc();

    s.section = section_;
    if (m == ".align") {
      if (s.operands.empty()) throw AsmError(line_no, ".align needs an argument");
      align_to(1u << s.operands[0].value);
      return loc();
    }
    if (m == ".word") {
      align_to(4);
      s.addr = loc();
      s.size_bytes = static_cast<uint32_t>(s.operands.size()) * 4;
    } else if (m == ".half") {
      align_to(2);
      s.addr = loc();
      s.size_bytes = static_cast<uint32_t>(s.operands.size()) * 2;
    } else if (m == ".byte") {
      s.addr = loc();
      s.size_bytes = static_cast<uint32_t>(s.operands.size());
    } else if (m == ".space") {
      if (s.operands.empty()) throw AsmError(line_no, ".space needs a size");
      s.addr = loc();
      s.size_bytes = static_cast<uint32_t>(s.operands[0].value);
    } else if (m == ".ascii" || m == ".asciiz") {
      s.addr = loc();
      uint32_t bytes = 0;
      for (const std::string& str : s.strings)
        bytes += static_cast<uint32_t>(str.size()) + (m == ".asciiz" ? 1 : 0);
      s.size_bytes = bytes;
    } else {
      throw AsmError(line_no, "unknown directive: " + m);
    }
    const uint32_t addr = s.addr;
    loc() += s.size_bytes;
    statements_.push_back(std::move(s));
    return addr;
  }

  // ---- pass 2: emission ----
  void emit_all() {
    text_.assign(text_loc_ - text_base_, 0);
    data_.assign(data_loc_ - data_base_, 0);
    for (const Statement& s : statements_) {
      if (is_directive(s.mnemonic)) {
        emit_data(s);
      } else {
        emit_instruction(s);
      }
    }
  }

  std::vector<uint8_t>& section_bytes(int section) { return section == 0 ? text_ : data_; }
  uint32_t section_base(int section) const {
    return section == 0 ? text_base_ : data_base_;
  }

  void put8(int section, uint32_t addr, uint8_t v) {
    auto& bytes = section_bytes(section);
    const uint32_t off = addr - section_base(section);
    assert(off < bytes.size());
    bytes[off] = v;
  }
  void put16(int section, uint32_t addr, uint16_t v) {
    put8(section, addr, static_cast<uint8_t>(v));
    put8(section, addr + 1, static_cast<uint8_t>(v >> 8));
  }
  void put32(int section, uint32_t addr, uint32_t v) {
    put16(section, addr, static_cast<uint16_t>(v));
    put16(section, addr + 2, static_cast<uint16_t>(v >> 16));
  }

  int64_t resolve(const Operand& op, int line_no) const {
    if (op.is_imm()) return op.value;
    if (op.is_sym()) {
      auto it = symbols_.find(op.symbol);
      if (it == symbols_.end()) throw AsmError(line_no, "undefined symbol: " + op.symbol);
      return static_cast<int64_t>(it->second) + op.value;
    }
    throw AsmError(line_no, "expected immediate or symbol");
  }

  int64_t resolve_mem_disp(const Operand& op, int line_no) const {
    if (!op.symbol.empty()) {
      auto it = symbols_.find(op.symbol);
      if (it == symbols_.end()) throw AsmError(line_no, "undefined symbol: " + op.symbol);
      return static_cast<int64_t>(it->second) + op.value;
    }
    return op.value;
  }

  void emit_data(const Statement& s) {
    const std::string& m = s.mnemonic;
    uint32_t addr = s.addr;
    if (m == ".word") {
      for (const Operand& op : s.operands) {
        put32(s.section, addr, static_cast<uint32_t>(resolve(op, s.line_no)));
        addr += 4;
      }
    } else if (m == ".half") {
      for (const Operand& op : s.operands) {
        put16(s.section, addr, static_cast<uint16_t>(resolve(op, s.line_no)));
        addr += 2;
      }
    } else if (m == ".byte") {
      for (const Operand& op : s.operands) {
        put8(s.section, addr, static_cast<uint8_t>(resolve(op, s.line_no)));
        addr += 1;
      }
    } else if (m == ".ascii" || m == ".asciiz") {
      for (const std::string& str : s.strings) {
        for (char c : str) put8(s.section, addr++, static_cast<uint8_t>(c));
        if (m == ".asciiz") put8(s.section, addr++, 0);
      }
    }
    // .space: already zero-filled
  }

  // Emits one encoded word at the statement cursor.
  void word(uint32_t& addr, const Instr& i) {
    put32(0, addr, isa::encode(i));
    addr += 4;
  }

  static Instr r3(Op op, int rd, int rs, int rt) {
    Instr i;
    i.op = op;
    i.rd = static_cast<uint8_t>(rd);
    i.rs = static_cast<uint8_t>(rs);
    i.rt = static_cast<uint8_t>(rt);
    return i;
  }
  static Instr imm(Op op, int rt, int rs, uint16_t imm16) {
    Instr i;
    i.op = op;
    i.rt = static_cast<uint8_t>(rt);
    i.rs = static_cast<uint8_t>(rs);
    i.imm16 = imm16;
    return i;
  }

  uint16_t branch_disp(uint32_t branch_addr, int64_t target, int line_no) const {
    const int64_t diff = target - (static_cast<int64_t>(branch_addr) + 4);
    if (diff & 3) throw AsmError(line_no, "unaligned branch target");
    const int64_t words = diff >> 2;
    if (!fits_simm16(words)) throw AsmError(line_no, "branch target out of range");
    return static_cast<uint16_t>(words);
  }

  void check_ops(const Statement& s, size_t count) {
    if (s.operands.size() != count)
      throw AsmError(s.line_no, s.mnemonic + ": expected " + std::to_string(count) +
                                    " operands, got " + std::to_string(s.operands.size()));
  }

  int reg_op(const Statement& s, size_t idx) {
    if (idx >= s.operands.size() || !s.operands[idx].is_reg())
      throw AsmError(s.line_no, s.mnemonic + ": operand " + std::to_string(idx + 1) +
                                    " must be a register");
    return s.operands[idx].reg;
  }

  void emit_instruction(const Statement& s) {
    uint32_t addr = s.addr;
    const std::string& m = s.mnemonic;

    // ---- pseudo-instructions ----
    if (m == "nop") { word(addr, r3(Op::kSll, 0, 0, 0)); return; }
    if (m == "move") {
      check_ops(s, 2);
      word(addr, r3(Op::kAddu, reg_op(s, 0), reg_op(s, 1), 0));
      return;
    }
    if (m == "neg" || m == "negu") {
      check_ops(s, 2);
      word(addr, r3(m == "neg" ? Op::kSub : Op::kSubu, reg_op(s, 0), 0, reg_op(s, 1)));
      return;
    }
    if (m == "not") {
      check_ops(s, 2);
      word(addr, r3(Op::kNor, reg_op(s, 0), reg_op(s, 1), 0));
      return;
    }
    if (m == "li") {
      check_ops(s, 2);
      const int rt = reg_op(s, 0);
      const int64_t v = resolve(s.operands[1], s.line_no);
      if (fits_simm16(v)) {
        word(addr, imm(Op::kAddiu, rt, 0, static_cast<uint16_t>(v)));
      } else if (fits_uimm16(v)) {
        word(addr, imm(Op::kOri, rt, 0, static_cast<uint16_t>(v)));
      } else {
        const uint32_t u = static_cast<uint32_t>(v);
        word(addr, imm(Op::kLui, rt, 0, static_cast<uint16_t>(u >> 16)));
        word(addr, imm(Op::kOri, rt, rt, static_cast<uint16_t>(u)));
      }
      return;
    }
    if (m == "la") {
      check_ops(s, 2);
      const int rt = reg_op(s, 0);
      const uint32_t v = static_cast<uint32_t>(resolve(s.operands[1], s.line_no));
      word(addr, imm(Op::kLui, rt, 0, static_cast<uint16_t>(v >> 16)));
      word(addr, imm(Op::kOri, rt, rt, static_cast<uint16_t>(v)));
      return;
    }
    if (m == "b") {
      check_ops(s, 1);
      const int64_t target = resolve(s.operands[0], s.line_no);
      word(addr, imm(Op::kBeq, 0, 0, branch_disp(addr, target, s.line_no)));
      return;
    }
    if (m == "beqz" || m == "bnez") {
      check_ops(s, 2);
      const int rs = reg_op(s, 0);
      const int64_t target = resolve(s.operands[1], s.line_no);
      word(addr, imm(m == "beqz" ? Op::kBeq : Op::kBne, 0, rs,
                     branch_disp(addr, target, s.line_no)));
      return;
    }
    if (m == "blt" || m == "bgt" || m == "ble" || m == "bge" ||
        m == "bltu" || m == "bgtu" || m == "bleu" || m == "bgeu") {
      check_ops(s, 3);
      const int rs = reg_op(s, 0);
      const int rt = reg_op(s, 1);
      const int64_t target = resolve(s.operands[2], s.line_no);
      const bool usign = m.back() == 'u';
      const std::string base = usign ? m.substr(0, m.size() - 1) : m;
      const Op slt = usign ? Op::kSltu : Op::kSlt;
      // blt: slt $at,rs,rt ; bne $at
      // bge: slt $at,rs,rt ; beq $at
      // bgt: slt $at,rt,rs ; bne $at
      // ble: slt $at,rt,rs ; beq $at
      const bool swap = (base == "bgt" || base == "ble");
      const bool on_set = (base == "blt" || base == "bgt");
      word(addr, r3(slt, isa::kAt, swap ? rt : rs, swap ? rs : rt));
      word(addr, imm(on_set ? Op::kBne : Op::kBeq, 0, isa::kAt,
                     branch_disp(addr, target, s.line_no)));
      return;
    }
    if (m == "mul") {
      check_ops(s, 3);
      const int rd = reg_op(s, 0);
      Instr mi = r3(Op::kMult, 0, reg_op(s, 1), reg_op(s, 2));
      word(addr, mi);
      word(addr, r3(Op::kMflo, rd, 0, 0));
      return;
    }
    if (m == "subi" || m == "subiu") {
      check_ops(s, 3);
      const int64_t v = resolve(s.operands[2], s.line_no);
      if (!fits_simm16(-v)) throw AsmError(s.line_no, "subi immediate out of range");
      word(addr, imm(m == "subi" ? Op::kAddi : Op::kAddiu, reg_op(s, 0), reg_op(s, 1),
                     static_cast<uint16_t>(-v)));
      return;
    }

    // ---- real instructions ----
    auto it = op_table().find(m);
    if (it == op_table().end()) throw AsmError(s.line_no, "unknown mnemonic: " + m);
    const Op op = it->second;

    Instr i;
    i.op = op;
    switch (op) {
      case Op::kSll: case Op::kSrl: case Op::kSra: {
        check_ops(s, 3);
        i.rd = static_cast<uint8_t>(reg_op(s, 0));
        i.rt = static_cast<uint8_t>(reg_op(s, 1));
        const int64_t sh = resolve(s.operands[2], s.line_no);
        if (sh < 0 || sh > 31) throw AsmError(s.line_no, "shift amount out of range");
        i.shamt = static_cast<uint8_t>(sh);
        break;
      }
      case Op::kSllv: case Op::kSrlv: case Op::kSrav:
        check_ops(s, 3);
        i.rd = static_cast<uint8_t>(reg_op(s, 0));
        i.rt = static_cast<uint8_t>(reg_op(s, 1));
        i.rs = static_cast<uint8_t>(reg_op(s, 2));
        break;
      case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
      case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kNor:
      case Op::kSlt: case Op::kSltu:
        check_ops(s, 3);
        i.rd = static_cast<uint8_t>(reg_op(s, 0));
        i.rs = static_cast<uint8_t>(reg_op(s, 1));
        i.rt = static_cast<uint8_t>(reg_op(s, 2));
        break;
      case Op::kMult: case Op::kMultu: case Op::kDiv: case Op::kDivu:
        check_ops(s, 2);
        i.rs = static_cast<uint8_t>(reg_op(s, 0));
        i.rt = static_cast<uint8_t>(reg_op(s, 1));
        break;
      case Op::kMfhi: case Op::kMflo:
        check_ops(s, 1);
        i.rd = static_cast<uint8_t>(reg_op(s, 0));
        break;
      case Op::kMthi: case Op::kMtlo:
        check_ops(s, 1);
        i.rs = static_cast<uint8_t>(reg_op(s, 0));
        break;
      case Op::kJr:
        check_ops(s, 1);
        i.rs = static_cast<uint8_t>(reg_op(s, 0));
        break;
      case Op::kJalr:
        if (s.operands.size() == 1) {
          i.rd = 31;
          i.rs = static_cast<uint8_t>(reg_op(s, 0));
        } else {
          check_ops(s, 2);
          i.rd = static_cast<uint8_t>(reg_op(s, 0));
          i.rs = static_cast<uint8_t>(reg_op(s, 1));
        }
        break;
      case Op::kSyscall: case Op::kBreak:
        break;
      case Op::kJ: case Op::kJal: {
        check_ops(s, 1);
        const uint32_t target = static_cast<uint32_t>(resolve(s.operands[0], s.line_no));
        if (target & 3) throw AsmError(s.line_no, "unaligned jump target");
        i.target26 = (target >> 2) & 0x03FFFFFFu;
        break;
      }
      case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu: {
        check_ops(s, 3);
        i.rt = static_cast<uint8_t>(reg_op(s, 0));
        i.rs = static_cast<uint8_t>(reg_op(s, 1));
        const int64_t v = resolve(s.operands[2], s.line_no);
        if (!fits_simm16(v)) throw AsmError(s.line_no, "immediate out of range");
        i.imm16 = static_cast<uint16_t>(v);
        break;
      }
      case Op::kAndi: case Op::kOri: case Op::kXori: {
        check_ops(s, 3);
        i.rt = static_cast<uint8_t>(reg_op(s, 0));
        i.rs = static_cast<uint8_t>(reg_op(s, 1));
        const int64_t v = resolve(s.operands[2], s.line_no);
        if (!fits_uimm16(v) && !fits_simm16(v))
          throw AsmError(s.line_no, "immediate out of range");
        i.imm16 = static_cast<uint16_t>(v);
        break;
      }
      case Op::kLui: {
        check_ops(s, 2);
        i.rt = static_cast<uint8_t>(reg_op(s, 0));
        const int64_t v = resolve(s.operands[1], s.line_no);
        if (!fits_uimm16(v)) throw AsmError(s.line_no, "lui immediate out of range");
        i.imm16 = static_cast<uint16_t>(v);
        break;
      }
      case Op::kBeq: case Op::kBne: {
        check_ops(s, 3);
        i.rs = static_cast<uint8_t>(reg_op(s, 0));
        i.rt = static_cast<uint8_t>(reg_op(s, 1));
        i.imm16 = branch_disp(addr, resolve(s.operands[2], s.line_no), s.line_no);
        break;
      }
      case Op::kBlez: case Op::kBgtz: case Op::kBltz: case Op::kBgez:
      case Op::kBltzal: case Op::kBgezal: {
        check_ops(s, 2);
        i.rs = static_cast<uint8_t>(reg_op(s, 0));
        i.imm16 = branch_disp(addr, resolve(s.operands[1], s.line_no), s.line_no);
        break;
      }
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
      case Op::kSb: case Op::kSh: case Op::kSw: {
        check_ops(s, 2);
        i.rt = static_cast<uint8_t>(reg_op(s, 0));
        const Operand& memop = s.operands[1];
        int64_t disp;
        if (memop.is_mem()) {
          i.rs = static_cast<uint8_t>(memop.reg);
          disp = resolve_mem_disp(memop, s.line_no);
        } else {
          // Absolute form "lw $t0, label" — base $zero. Only valid if the
          // address fits a signed 16-bit displacement, which our layouts
          // don't guarantee; require explicit la + 0($reg) instead.
          throw AsmError(s.line_no, "memory operand must be disp($reg)");
        }
        if (!fits_simm16(disp)) throw AsmError(s.line_no, "displacement out of range");
        i.imm16 = static_cast<uint16_t>(disp);
        break;
      }
      case Op::kInvalid:
        throw AsmError(s.line_no, "unknown mnemonic: " + m);
    }
    word(addr, i);
  }

  AsmOptions options_;
  uint32_t text_base_ = 0;  // lowest address used by each section
  uint32_t data_base_ = 0;
  int section_ = 0;
  uint32_t text_loc_ = 0;
  uint32_t data_loc_ = 0;
  std::vector<Statement> statements_;
  std::unordered_map<std::string, uint32_t> symbols_;
  std::vector<uint8_t> text_;
  std::vector<uint8_t> data_;
};

}  // namespace

Program assemble(std::string_view source, const AsmOptions& options) {
  Assembler assembler(options);
  return assembler.run(source);
}

}  // namespace dim::asmblr
