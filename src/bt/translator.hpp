// DIM — Dynamic Instruction Merging. The hardware binary translator that
// watches the retired instruction stream and builds array configurations.
//
// Detection (paper §4.2): translation starts at the first instruction after
// a branch execution and stops at an unsupported instruction or another
// branch (unless speculating). Sequences longer than 3 instructions are
// saved to the reconfiguration cache, indexed by start PC.
//
// Allocation: for each incoming instruction the source operands are checked
// against the per-line bitmap of target registers (the dependence table);
// the instruction is placed in the first line below all of its producers
// that still has a free functional unit of the right group (the resource
// table), at the leftmost free column. False dependencies (WAR/WAW) need no
// serialization: operands are routed from the producing line's bus position,
// and only the last write of each register leaves the array.
//
// Speculation: once the bimodal counter of the terminating branch is
// saturated, the following basic block is merged into the configuration
// (up to `max_spec_bbs` levels deep).
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_set>
#include <vector>

#include "bt/predictor.hpp"
#include "bt/rcache.hpp"
#include "isa/instruction.hpp"
#include "obs/event.hpp"
#include "rra/array_shape.hpp"
#include "rra/configuration.hpp"
#include "rra/exec_mode/execution_model.hpp"
#include "sim/cpu_state.hpp"

namespace dim::bt {

// Deliberate translation bugs for fuzzer self-tests (src/fuzz/): the
// differential fuzzer must detect each of these as a transparency
// divergence and shrink a failing program to a small reproducer. Always
// kNone outside tests — see tests/test_fuzz.cpp and `dimsim-fuzz
// --self-test`. Faults corrupt only the *semantics* of the placed op
// (never its operand registers as seen by the dependence tables), so every
// placement invariant still holds and the bug is observable exclusively as
// wrong architectural state.
enum class FaultInjection : uint8_t {
  kNone = 0,
  kAddiuImmOffByOne,   // every addiu placed on the array gets imm16 ^= 1
  kSubuSwapOperands,   // every subu placed on the array computes rt - rs
};

struct TranslatorParams {
  rra::ArrayShape shape = rra::ArrayShape::config1();
  bool speculation = true;
  // Speculative basic blocks merged BEYOND the entry block ("up to 3 basic
  // blocks deep"): a configuration spans at most max_spec_bbs + 1 blocks
  // in total. See the depth guard in Translator::observe.
  int max_spec_bbs = 3;
  int min_instructions = 4;  // "more than three instructions"
  int max_input_regs = rra::kNumCtxRegs;
  int max_output_regs = rra::kNumCtxRegs;
  int max_immediates = 0;  // 0 = unlimited

  // Related-work emulation knobs (paper §2.2). The CCA of Clark et al.
  // "does not support memory operations or shifts, limiting its field of
  // application and, as a consequence, it supports only a limited number
  // of inputs and outputs" — model that by disallowing those operations.
  bool allow_mem = true;
  bool allow_shifts = true;
  bool allow_mult = true;

  // If-conversion (hammock predication). When enabled, a short forward
  // hammock (`if-then`) or diamond (`if-then-else` with an internal
  // unconditional join jump) whose terminating branch the speculation path
  // declined to merge is if-converted: both arms are placed into the same
  // configuration guarded by a predicate slot, and the branch becomes a
  // predicate-defining op that can never misspeculate. Oversized or
  // non-straight-line hammocks fall back to the speculation path untouched.
  bool predication = false;
  int max_hammock_ops = 4;  // total arm instructions (the join jump is free)
  int max_pred_slots = 8;   // hammocks per configuration (<= rra::kMaxPredSlots)

  // Warp-processing-style kernel-only optimization: when non-empty, only
  // sequences starting at these PCs (the profiled hot spots) are
  // translated — everything else stays on the processor.
  std::unordered_set<uint32_t> allowed_starts;

  // Array execution personality (src/rra/exec_mode/). The translator
  // consults it at config-build time: under the elastic mode every
  // finalized configuration is classified for deadlock freedom
  // (Configuration::elastic_memo) so the dispatcher can fall back to
  // row-sync without re-analyzing on the hot path.
  rra::ExecModeParams exec_mode;

  // Test-only planted translator bug (see FaultInjection above).
  FaultInjection fault = FaultInjection::kNone;
};

// Mutable state of one in-flight ConfigBuilder, exported for
// checkpointing. A checkpoint can land in the middle of a capture, and a
// resumed run must keep building the configuration exactly where the
// straight run would — so the dependence/resource tables are serialized
// as-is, never reconstructed by replaying ops (replaying would re-apply
// fault injection and double-corrupt planted-bug ops).
struct BuilderState {
  uint32_t start_pc = 0;
  std::vector<rra::ArrayOp> ops;
  std::vector<std::array<int, 3>> rows;  // per-row units in use: alu, mul, ldst
  std::array<int, rra::kNumCtxRegs> last_writer_row{};
  uint64_t input_ctx_bits = 0;  // kNumCtxRegs (34) bits fit one u64
  uint64_t written_bits = 0;
  int last_mem_row = -1;
  int last_store_row = -1;
  int bb = 0;
  int immediates = 0;
  int pred_slots = 0;
};

// One look-ahead instruction of a hammock arm (static code at `pc`).
struct HammockOp {
  isa::Instr instr;
  uint32_t pc = 0;
};

// Reads and decodes static code at `pc` for hammock look-ahead (the
// translator's window into the fetch path). Returns nullopt when the
// address is unreadable. Wired by the accelerated system; not serialized —
// the owner re-attaches it after a checkpoint restore.
using CodeReader = std::function<std::optional<isa::Instr>(uint32_t)>;

// The DIM detection-phase tables for one in-flight translation.
class ConfigBuilder {
 public:
  ConfigBuilder(uint32_t start_pc, const TranslatorParams& params);

  // Checkpoint restore: rebuilds the builder from exported state. The
  // params must be the ones the state was exported under.
  ConfigBuilder(const BuilderState& state, const TranslatorParams& params);

  // Attempts to place a (supported, non-branch) instruction. Returns false
  // when a capacity limit is hit; the builder is left unchanged.
  bool try_add(const isa::Instr& instr, uint32_t pc);

  // Attempts to place a conditional branch and open the next (speculative)
  // basic block behind it.
  bool try_add_branch(const isa::Instr& instr, uint32_t pc, bool predicted_taken);

  // Replays an existing configuration into this builder (used to extend a
  // cached configuration with a further basic block). Returns false if the
  // replay does not fit (it always should, for the shape it was built for).
  bool replay(const rra::Configuration& config);

  // If-conversion: places `branch` as a predicate-defining op and both arms
  // (and the diamond's join jump, when present) guarded by a fresh predicate
  // slot. On failure the builder may be left dirty — the caller merges into
  // a copy and discards it when this returns false.
  bool try_merge_hammock(const isa::Instr& branch, uint32_t branch_pc,
                         const std::vector<HammockOp>& not_taken_arm,
                         const HammockOp* join_jump,
                         const std::vector<HammockOp>& taken_arm);

  rra::Configuration finalize(uint32_t end_pc) const;

  BuilderState export_state() const;

  int size() const { return static_cast<int>(ops_.size()); }
  int num_bbs() const { return bb_ + 1; }
  int pred_slots() const { return pred_slots_; }
  uint32_t start_pc() const { return start_pc_; }

 private:
  struct RowUse {
    int alu = 0;
    int mul = 0;
    int ldst = 0;
  };

  // Placement options for the core routine shared by every add path.
  struct PlaceOpts {
    bool is_branch = false;
    bool predicted_taken = false;
    int pred_slot = -1;
    bool pred_when_taken = false;
    bool is_pred_def = false;
    bool is_join_jump = false;
    int min_row_floor = 0;  // predicated ops sit below their pred-def row
  };

  bool place(const isa::Instr& instr, uint32_t pc, const PlaceOpts& opts);

  TranslatorParams params_;
  uint32_t start_pc_;
  std::vector<rra::ArrayOp> ops_;
  std::vector<RowUse> rows_;
  // Dependence table: last line writing each context register (-1 = none).
  std::array<int, rra::kNumCtxRegs> last_writer_row_;
  std::bitset<rra::kNumCtxRegs> input_ctx_;  // reads table (input context)
  std::bitset<rra::kNumCtxRegs> written_;    // writes table
  int last_mem_row_ = -1;
  int last_store_row_ = -1;
  int bb_ = 0;
  int immediates_ = 0;
  int pred_slots_ = 0;
};

struct TranslatorStats {
  uint64_t captures_started = 0;
  uint64_t configs_inserted = 0;
  uint64_t captures_aborted = 0;    // capacity / stream discontinuity
  uint64_t too_short = 0;           // sequence did not exceed 3 instructions
  uint64_t extensions_completed = 0;
  uint64_t observed_instructions = 0;
  uint64_t hammocks_merged = 0;     // if-converted hammocks/diamonds
  uint64_t hammock_rejects = 0;     // candidates declined (caps / capacity)
};

// The translator's complete checkpointable state: counters, the detection
// latches, and the in-flight capture (if one is open).
struct TranslatorState {
  TranslatorStats stats;
  bool start_pending = true;
  bool extending = false;
  // Hammock skip window: after a merge the already-placed arm instructions
  // retire on the processor and must not be re-captured.
  bool skipping = false;
  uint32_t skip_lo = 0;
  uint32_t skip_until = 0;
  std::optional<BuilderState> builder;
};

// The detection engine. Consumes the retired stream of the processor and
// fills the reconfiguration cache. Runs "in parallel": it costs no cycles.
class Translator {
 public:
  Translator(const TranslatorParams& params, ReconfigCache* cache,
             BimodalPredictor* predictor);

  // Observes one normally-retired instruction.
  void observe(const sim::StepInfo& info);

  // The array executed a configuration: the observed stream is
  // discontinuous, so any in-flight capture is dropped.
  void on_array_executed();

  // Starts extending `config` by one basic block: `branch` (at end_pc) was
  // just retired with outcome == predicted_taken and a saturated counter.
  // Returns false if the existing ops + branch do not fit.
  bool begin_extension(const rra::Configuration& config, const isa::Instr& branch,
                       uint32_t branch_pc, bool predicted_taken);

  bool extending() const { return extending_; }
  bool capturing() const { return builder_.has_value(); }
  const TranslatorStats& stats() const { return stats_; }
  const TranslatorParams& params() const { return params_; }

  // Checkpoint support. Restore is silent (no events): restoring state is
  // not translation activity.
  TranslatorState export_state() const;
  void restore_state(const TranslatorState& state);

  // Attaches the capture-lifecycle event stream (started / aborted /
  // too-short / finalized, extension begun / completed). Null disables.
  void set_event_stream(obs::EventStream* events) { events_ = events; }

  // Attaches the static-code look-ahead used by hammock detection. Without
  // a reader, predication is inert (no hammock is ever merged).
  void set_code_reader(CodeReader reader) { code_reader_ = std::move(reader); }

 private:
  void finalize_capture(uint32_t end_pc);
  void abort_capture();
  // Attempts to if-convert the hammock starting at `branch_pc`. On success
  // the merged ops are in the builder and the skip window is armed.
  bool try_hammock_merge(const isa::Instr& branch, uint32_t branch_pc);
  void emit(obs::EventKind kind, uint32_t config_pc, int32_t ops = 0,
            int32_t depth = 0, uint32_t branch_pc = 0);

  TranslatorParams params_;
  ReconfigCache* cache_;
  BimodalPredictor* predictor_;
  std::optional<ConfigBuilder> builder_;
  bool start_pending_ = true;  // program entry starts a sequence
  bool extending_ = false;
  bool skipping_ = false;      // inside a merged hammock's retire window
  uint32_t skip_lo_ = 0;
  uint32_t skip_until_ = 0;
  TranslatorStats stats_;
  obs::EventStream* events_ = nullptr;  // not owned; null = tracing off
  CodeReader code_reader_;              // null = no hammock look-ahead
};

}  // namespace dim::bt
