// The reconfiguration cache: FIFO-replaced storage for translated
// configurations, indexed by the PC of the first translated instruction.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>

#include "rra/configuration.hpp"

namespace dim::bt {

// Replacement policy. The paper's hardware uses FIFO ("a new entry in the
// cache (based on FIFO) is created"); LRU is provided for the ablation
// bench.
enum class Replacement : uint8_t { kFifo, kLru };

class ReconfigCache {
 public:
  explicit ReconfigCache(size_t slots, Replacement policy = Replacement::kFifo)
      : slots_(slots), policy_(policy) {}

  // Looks up a configuration by start PC; counts a hit/miss. Under LRU a
  // hit refreshes the entry's position; under FIFO it does not.
  rra::Configuration* lookup(uint32_t pc);

  // True if `pc` has an entry (no hit/miss accounting) — used by the
  // translator to avoid re-translating cached sequences.
  bool contains(uint32_t pc) const { return entries_.count(pc) != 0; }

  // Read-only access with no stats or recency side effects (serialization,
  // tests).
  const rra::Configuration* peek(uint32_t pc) const {
    auto it = entries_.find(pc);
    return it == entries_.end() ? nullptr : it->second.get();
  }

  // Inserts (or replaces) the configuration for its start PC. On overflow
  // the oldest inserted entry is evicted (FIFO, per the paper).
  void insert(rra::Configuration config);

  // Removes one configuration (speculation flush).
  void flush(uint32_t pc);

  size_t size() const { return entries_.size(); }
  size_t slots() const { return slots_; }
  Replacement policy() const { return policy_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t insertions() const { return insertions_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t flushes() const { return flushes_; }
  // Total configuration words written across all insertions/replacements
  // (one word per translated instruction; feeds the power model).
  uint64_t words_written() const { return words_written_; }

  // Oldest-first insertion order (exposed for tests of the FIFO policy).
  const std::deque<uint32_t>& fifo_order() const { return order_; }

 private:
  size_t slots_;
  Replacement policy_;
  std::unordered_map<uint32_t, std::unique_ptr<rra::Configuration>> entries_;
  std::deque<uint32_t> order_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t flushes_ = 0;
  uint64_t words_written_ = 0;
};

}  // namespace dim::bt
