// The reconfiguration cache: FIFO-replaced storage for translated
// configurations, indexed by the PC of the first translated instruction.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/event.hpp"
#include "rra/configuration.hpp"

namespace dim::bt {

// Replacement policy. The paper's hardware uses FIFO ("a new entry in the
// cache (based on FIFO) is created"); LRU is provided for the ablation
// bench.
enum class Replacement : uint8_t { kFifo, kLru };

// The cache's statistic counters as one block, exported for checkpointing.
struct RcacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t flushes = 0;
  uint64_t words_written = 0;
  // Monotone stamp source for Configuration::revision (loop residency): a
  // resident dispatch is valid only while the cached entry's revision
  // matches the one latched in the array. Serialized so a resumed run can
  // never reissue a stamp an old latch still holds.
  uint64_t revision_counter = 0;
};

class ReconfigCache {
 public:
  explicit ReconfigCache(size_t slots, Replacement policy = Replacement::kFifo)
      : slots_(slots), policy_(policy) {}

  // Dispatch lookup: a present entry counts a hit and, under LRU, has its
  // recency refreshed (O(1): the entry's list node is spliced to the back).
  // Absence is NOT counted here — the system probes on every retired PC,
  // and charging a miss per probe would inflate the miss count by the
  // entire non-translated instruction stream. Genuine misses (a sequence
  // start with no stored configuration) are registered by the translator
  // through note_miss().
  rra::Configuration* lookup(uint32_t pc);

  // Side-effect-free probe: no hit/miss accounting, no recency refresh.
  // Used by bookkeeping paths (translator start checks, speculation
  // extension) that must not perturb the dispatch statistics.
  rra::Configuration* probe(uint32_t pc) {
    auto it = entries_.find(pc);
    return it == entries_.end() ? nullptr : it->second.get();
  }

  // Registers one counted miss: a translation-start candidate had no
  // stored configuration. Called by the translator, not by probes.
  void note_miss() { ++misses_; }

  // True if `pc` has an entry (no hit/miss accounting) — used by the
  // translator to avoid re-translating cached sequences.
  bool contains(uint32_t pc) const { return entries_.count(pc) != 0; }

  // Read-only access with no stats or recency side effects (serialization,
  // tests).
  const rra::Configuration* peek(uint32_t pc) const {
    auto it = entries_.find(pc);
    return it == entries_.end() ? nullptr : it->second.get();
  }

  // Inserts (or replaces) the configuration for its start PC. On overflow
  // the oldest inserted entry is evicted (FIFO, per the paper).
  // words_written() grows only for configurations actually stored: a
  // zero-slot cache writes nothing (and must charge nothing downstream —
  // see SystemConfig::translation_cost_per_instr); a replacement rewrites
  // the entry in place and therefore does count. Under FIFO an in-place
  // rewrite (e.g. a speculation extension) keeps the entry's insertion
  // position; under LRU the rewrite is a use and refreshes its recency.
  void insert(rra::Configuration config);

  // Attaches the lifecycle event stream (insert / evict / flush events).
  // Null (the default) disables emission.
  void set_event_stream(obs::EventStream* events) { events_ = events; }

  // Removes one configuration (speculation flush).
  void flush(uint32_t pc);

  size_t size() const { return entries_.size(); }
  size_t slots() const { return slots_; }
  Replacement policy() const { return policy_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t insertions() const { return insertions_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t flushes() const { return flushes_; }
  // Total configuration words written across all insertions/replacements
  // (one word per translated instruction; feeds the power model).
  uint64_t words_written() const { return words_written_; }

  // Oldest-first eviction order, materialized for tests and serialization
  // (the live order is an intrusive list, not indexable).
  std::vector<uint32_t> fifo_order() const {
    return std::vector<uint32_t>(order_.begin(), order_.end());
  }

  RcacheCounters counters() const {
    return {hits_,    misses_,        insertions_,       evictions_,
            flushes_, words_written_, revision_counter_};
  }

  // Stored configurations in eviction order (oldest first) — together with
  // counters(), the cache's complete checkpointable state.
  std::vector<rra::Configuration> export_entries() const;

  // Checkpoint restore: replaces the whole cache with `entries` (oldest
  // first) and the given counters. Completely silent — no statistics, no
  // lifecycle events — because restoring state is not cache activity.
  // Entries beyond slots() or with duplicate start PCs are rejected
  // (std::invalid_argument): a checkpoint of a valid cache never has them.
  void restore(std::vector<rra::Configuration> entries,
               const RcacheCounters& counters);

  // Warm-start preload: stores one configuration silently (no insertion /
  // words-written accounting, no events) so a pre-loaded cache begins its
  // run with zeroed statistics — the paper's counters measure what the
  // RUN does, not what the file shipped. Returns false (and stores
  // nothing) when the cache is full or the start PC is already present;
  // unlike insert(), preloading never evicts.
  bool preload(rra::Configuration config);

 private:
  using OrderList = std::list<uint32_t>;

  void emit(obs::EventKind kind, uint32_t pc, int32_t words);

  size_t slots_;
  Replacement policy_;
  obs::EventStream* events_ = nullptr;  // not owned; null = tracing off
  std::unordered_map<uint32_t, std::unique_ptr<rra::Configuration>> entries_;
  // Eviction order (front = next victim) plus a PC -> node map so hits,
  // flushes and evictions never scan: LRU refresh is a splice, O(1).
  OrderList order_;
  std::unordered_map<uint32_t, OrderList::iterator> order_pos_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t flushes_ = 0;
  uint64_t words_written_ = 0;
  uint64_t revision_counter_ = 0;
};

}  // namespace dim::bt
