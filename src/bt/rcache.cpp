#include "bt/rcache.hpp"

#include <algorithm>

namespace dim::bt {

rra::Configuration* ReconfigCache::lookup(uint32_t pc) {
  auto it = entries_.find(pc);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  if (policy_ == Replacement::kLru) {
    // Refresh recency: move this PC to the back of the order queue.
    auto pos = std::find(order_.begin(), order_.end(), pc);
    if (pos != order_.end()) {
      order_.erase(pos);
      order_.push_back(pc);
    }
  }
  return it->second.get();
}

void ReconfigCache::insert(rra::Configuration config) {
  const uint32_t pc = config.start_pc;
  words_written_ += static_cast<uint64_t>(config.instruction_count());
  auto it = entries_.find(pc);
  if (it != entries_.end()) {
    // Replacement (e.g. a speculation extension): keep the FIFO position.
    *it->second = std::move(config);
    return;
  }
  if (slots_ == 0) return;
  while (entries_.size() >= slots_) {
    const uint32_t victim = order_.front();
    order_.pop_front();
    entries_.erase(victim);
    ++evictions_;
  }
  entries_.emplace(pc, std::make_unique<rra::Configuration>(std::move(config)));
  order_.push_back(pc);
  ++insertions_;
}

void ReconfigCache::flush(uint32_t pc) {
  auto it = entries_.find(pc);
  if (it == entries_.end()) return;
  entries_.erase(it);
  order_.erase(std::remove(order_.begin(), order_.end(), pc), order_.end());
  ++flushes_;
}

}  // namespace dim::bt
