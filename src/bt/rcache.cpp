#include "bt/rcache.hpp"

namespace dim::bt {

rra::Configuration* ReconfigCache::lookup(uint32_t pc) {
  auto it = entries_.find(pc);
  if (it == entries_.end()) return nullptr;  // misses are noted by the translator
  ++hits_;
  if (policy_ == Replacement::kLru) {
    // Refresh recency: splice this PC's node to the back of the order list.
    order_.splice(order_.end(), order_, order_pos_.find(pc)->second);
  }
  return it->second.get();
}

void ReconfigCache::insert(rra::Configuration config) {
  const uint32_t pc = config.start_pc;
  const uint64_t words = static_cast<uint64_t>(config.instruction_count());
  auto it = entries_.find(pc);
  if (it != entries_.end()) {
    // Replacement (e.g. a speculation extension): the entry is rewritten in
    // place — a real cache write — and keeps its FIFO position.
    words_written_ += words;
    *it->second = std::move(config);
    return;
  }
  if (slots_ == 0) return;  // nothing stored, nothing written
  while (entries_.size() >= slots_) {
    const uint32_t victim = order_.front();
    order_.pop_front();
    order_pos_.erase(victim);
    entries_.erase(victim);
    ++evictions_;
  }
  words_written_ += words;
  entries_.emplace(pc, std::make_unique<rra::Configuration>(std::move(config)));
  order_.push_back(pc);
  order_pos_.emplace(pc, std::prev(order_.end()));
  ++insertions_;
}

void ReconfigCache::flush(uint32_t pc) {
  auto it = entries_.find(pc);
  if (it == entries_.end()) return;
  entries_.erase(it);
  auto pos = order_pos_.find(pc);
  order_.erase(pos->second);
  order_pos_.erase(pos);
  ++flushes_;
}

}  // namespace dim::bt
