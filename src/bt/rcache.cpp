#include "bt/rcache.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dim::bt {

void ReconfigCache::emit(obs::EventKind kind, uint32_t pc, int32_t words) {
  if (events_ == nullptr) return;
  obs::Event e;
  e.kind = kind;
  e.config_pc = pc;
  e.ops = words;
  events_->emit(e);
}

rra::Configuration* ReconfigCache::lookup(uint32_t pc) {
  auto it = entries_.find(pc);
  if (it == entries_.end()) return nullptr;  // misses are noted by the translator
  ++hits_;
  if (policy_ == Replacement::kLru) {
    // Refresh recency: splice this PC's node to the back of the order list.
    order_.splice(order_.end(), order_, order_pos_.find(pc)->second);
  }
  return it->second.get();
}

void ReconfigCache::insert(rra::Configuration config) {
  const uint32_t pc = config.start_pc;
  const uint64_t words = static_cast<uint64_t>(config.instruction_count());
  auto it = entries_.find(pc);
  if (it != entries_.end()) {
    // Every (re)write gets a fresh revision, so an array-resident copy of
    // the old contents is detectable as stale by the dispatching system.
    config.revision = ++revision_counter_;
    // Replacement (e.g. a speculation extension): the entry is rewritten in
    // place — a real cache write. FIFO keeps the original insertion
    // position; LRU treats the rewrite as a use and refreshes recency.
    words_written_ += words;
    *it->second = std::move(config);
    if (policy_ == Replacement::kLru) {
      order_.splice(order_.end(), order_, order_pos_.find(pc)->second);
    }
    emit(obs::EventKind::kRcacheInsert, pc, static_cast<int32_t>(words));
    return;
  }
  if (slots_ == 0) return;  // nothing stored, nothing written
  while (entries_.size() >= slots_) {
    const uint32_t victim = order_.front();
    order_.pop_front();
    order_pos_.erase(victim);
    auto victim_it = entries_.find(victim);
    emit(obs::EventKind::kRcacheEvict, victim,
         victim_it->second->instruction_count());
    entries_.erase(victim_it);
    ++evictions_;
  }
  words_written_ += words;
  config.revision = ++revision_counter_;
  entries_.emplace(pc, std::make_unique<rra::Configuration>(std::move(config)));
  order_.push_back(pc);
  order_pos_.emplace(pc, std::prev(order_.end()));
  ++insertions_;
  emit(obs::EventKind::kRcacheInsert, pc, static_cast<int32_t>(words));
}

std::vector<rra::Configuration> ReconfigCache::export_entries() const {
  std::vector<rra::Configuration> out;
  out.reserve(entries_.size());
  for (uint32_t pc : order_) out.push_back(*entries_.at(pc));
  return out;
}

void ReconfigCache::restore(std::vector<rra::Configuration> entries,
                            const RcacheCounters& counters) {
  if (entries.size() > slots_) {
    throw std::invalid_argument("restore of " + std::to_string(entries.size()) +
                                " entries into a " + std::to_string(slots_) +
                                "-slot cache");
  }
  entries_.clear();
  order_.clear();
  order_pos_.clear();
  for (rra::Configuration& config : entries) {
    const uint32_t pc = config.start_pc;
    if (!entries_.emplace(pc, std::make_unique<rra::Configuration>(std::move(config)))
             .second) {
      throw std::invalid_argument("duplicate start PC in restored cache entries");
    }
    order_.push_back(pc);
    order_pos_.emplace(pc, std::prev(order_.end()));
  }
  hits_ = counters.hits;
  misses_ = counters.misses;
  insertions_ = counters.insertions;
  evictions_ = counters.evictions;
  flushes_ = counters.flushes;
  words_written_ = counters.words_written;
  revision_counter_ = counters.revision_counter;
}

bool ReconfigCache::preload(rra::Configuration config) {
  if (entries_.size() >= slots_ || entries_.count(config.start_pc) != 0) return false;
  const uint32_t pc = config.start_pc;
  // Preloading keeps the revision the entry was saved with (so a warm run
  // re-exports byte-identically) and only advances the counter past it, so
  // later insertions can never reissue a stamp the file already used.
  revision_counter_ = std::max(revision_counter_, config.revision);
  entries_.emplace(pc, std::make_unique<rra::Configuration>(std::move(config)));
  order_.push_back(pc);
  order_pos_.emplace(pc, std::prev(order_.end()));
  return true;
}

void ReconfigCache::flush(uint32_t pc) {
  auto it = entries_.find(pc);
  if (it == entries_.end()) return;
  emit(obs::EventKind::kRcacheFlush, pc, it->second->instruction_count());
  entries_.erase(it);
  auto pos = order_pos_.find(pc);
  order_.erase(pos->second);
  order_pos_.erase(pos);
  ++flushes_;
}

}  // namespace dim::bt
