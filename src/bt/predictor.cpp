#include "bt/predictor.hpp"

#include <algorithm>

namespace dim::bt {

void BimodalPredictor::update(uint32_t pc, bool taken) {
  auto [it, inserted] = counters_.try_emplace(pc, uint8_t{1});
  uint8_t& c = it->second;
  if (taken) {
    if (c < 3) ++c;
  } else {
    if (c > 0) --c;
  }
}

bool BimodalPredictor::predict(uint32_t pc) const { return counter(pc) >= 2; }

std::optional<bool> BimodalPredictor::saturated_direction(uint32_t pc) const {
  const uint8_t c = counter(pc);
  if (c == 0) return false;
  if (c == 3) return true;
  return std::nullopt;
}

uint8_t BimodalPredictor::counter(uint32_t pc) const {
  auto it = counters_.find(pc);
  return it == counters_.end() ? uint8_t{1} : it->second;
}

std::vector<std::pair<uint32_t, uint8_t>> BimodalPredictor::export_counters() const {
  std::vector<std::pair<uint32_t, uint8_t>> out(counters_.begin(), counters_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void BimodalPredictor::restore_counters(
    const std::vector<std::pair<uint32_t, uint8_t>>& counters) {
  counters_.clear();
  for (const auto& [pc, c] : counters) counters_[pc] = c;
}

}  // namespace dim::bt
