// Bimodal (2-bit saturating counter) branch predictor, Smith 1981 — the
// paper's speculation policy: a basic block is merged into a configuration
// only once the guarding branch's counter is saturated, and a configuration
// is flushed once the counter reaches the opposite saturation.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dim::bt {

class BimodalPredictor {
 public:
  // Counter states: 0 strongly-not-taken .. 3 strongly-taken. New branches
  // start weakly-not-taken (1).
  void update(uint32_t pc, bool taken);

  // Predicted direction (>=2 means taken).
  bool predict(uint32_t pc) const;

  // Direction if the counter is saturated (0 or 3); nullopt otherwise.
  // Speculation is gated on this ("the counter must achieve the maximum or
  // minimum value").
  std::optional<bool> saturated_direction(uint32_t pc) const;

  uint8_t counter(uint32_t pc) const;

  size_t tracked_branches() const { return counters_.size(); }
  void reset() { counters_.clear(); }

  // Checkpoint support: every (pc, counter) pair ascending by PC, so the
  // serialized bytes do not depend on hash-map iteration order.
  std::vector<std::pair<uint32_t, uint8_t>> export_counters() const;
  void restore_counters(const std::vector<std::pair<uint32_t, uint8_t>>& counters);

 private:
  std::unordered_map<uint32_t, uint8_t> counters_;
};

}  // namespace dim::bt
