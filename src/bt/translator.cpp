#include "bt/translator.hpp"

#include <algorithm>
#include <utility>

namespace dim::bt {

using isa::FuKind;
using isa::Instr;
using isa::Op;

namespace {

// Does this instruction carry an immediate the array must store?
bool uses_immediate(const Instr& i) {
  switch (i.op) {
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kSb: case Op::kSh: case Op::kSw:
      return true;
    default:
      return false;
  }
}

// Instructions the array can host. mfhi/mflo become routing moves of the
// HI/LO context registers, so they are translatable even though
// isa::dim_supported (which classifies FU needs) excludes them.
bool translatable(Op op) {
  return isa::dim_supported(op) || op == Op::kMfhi || op == Op::kMflo;
}

FuKind fu_for(const Instr& i, bool is_branch) {
  if (is_branch) return FuKind::kAlu;  // branches compare on an ALU
  if (i.op == Op::kMfhi || i.op == Op::kMflo) return FuKind::kAlu;
  return isa::fu_kind(i.op);
}

}  // namespace

// --- ConfigBuilder -----------------------------------------------------------

ConfigBuilder::ConfigBuilder(uint32_t start_pc, const TranslatorParams& params)
    : params_(params), start_pc_(start_pc) {
  last_writer_row_.fill(-1);
}

ConfigBuilder::ConfigBuilder(const BuilderState& state, const TranslatorParams& params)
    : params_(params), start_pc_(state.start_pc) {
  ops_ = state.ops;
  rows_.reserve(state.rows.size());
  for (const std::array<int, 3>& r : state.rows) {
    rows_.push_back(RowUse{r[0], r[1], r[2]});
  }
  last_writer_row_ = state.last_writer_row;
  input_ctx_ = std::bitset<rra::kNumCtxRegs>(state.input_ctx_bits);
  written_ = std::bitset<rra::kNumCtxRegs>(state.written_bits);
  last_mem_row_ = state.last_mem_row;
  last_store_row_ = state.last_store_row;
  bb_ = state.bb;
  immediates_ = state.immediates;
}

BuilderState ConfigBuilder::export_state() const {
  BuilderState s;
  s.start_pc = start_pc_;
  s.ops = ops_;
  s.rows.reserve(rows_.size());
  for (const RowUse& r : rows_) s.rows.push_back({r.alu, r.mul, r.ldst});
  s.last_writer_row = last_writer_row_;
  s.input_ctx_bits = input_ctx_.to_ullong();
  s.written_bits = written_.to_ullong();
  s.last_mem_row = last_mem_row_;
  s.last_store_row = last_store_row_;
  s.bb = bb_;
  s.immediates = immediates_;
  return s;
}

bool ConfigBuilder::place(const Instr& instr, uint32_t pc, bool is_branch,
                          bool predicted_taken) {
  const FuKind kind = fu_for(instr, is_branch);

  // RAW dependences: the instruction must sit strictly below every producer.
  int srcs[2];
  const int nsrc = rra::array_srcs(instr, srcs);
  int min_row = 0;
  std::bitset<rra::kNumCtxRegs> new_inputs;
  for (int k = 0; k < nsrc; ++k) {
    const int s = srcs[k];
    if (s == 0) continue;  // $zero
    const int producer = last_writer_row_[static_cast<size_t>(s)];
    if (producer >= 0) {
      min_row = std::max(min_row, producer + 1);
    } else if (!input_ctx_.test(static_cast<size_t>(s))) {
      new_inputs.set(static_cast<size_t>(s));
    }
  }

  // Memory ordering: no disambiguation hardware — loads may not pass
  // stores, stores may not pass any memory operation.
  if (isa::is_load(instr.op)) {
    min_row = std::max(min_row, last_store_row_ + 1);
  } else if (isa::is_store(instr.op)) {
    min_row = std::max(min_row, last_mem_row_ + 1);
  }

  // Capacity checks that must not mutate state on failure.
  if ((input_ctx_ | new_inputs).count() >
      static_cast<size_t>(params_.max_input_regs)) {
    return false;
  }
  int dests[2];
  const int ndst = rra::array_dests(instr, dests);
  std::bitset<rra::kNumCtxRegs> new_written = written_;
  for (int k = 0; k < ndst; ++k) new_written.set(static_cast<size_t>(dests[k]));
  if (new_written.count() > static_cast<size_t>(params_.max_output_regs)) return false;
  if (params_.max_immediates > 0 && uses_immediate(instr) &&
      immediates_ >= params_.max_immediates) {
    return false;
  }

  // Resource table: first line >= min_row with a free unit of this group.
  const int per_line = kind == FuKind::kAlu    ? params_.shape.alus_per_line
                       : kind == FuKind::kMul  ? params_.shape.muls_per_line
                                               : params_.shape.ldsts_per_line;
  if (per_line <= 0) return false;
  int row = -1;
  int col = -1;
  for (int r = min_row; r < params_.shape.lines; ++r) {
    if (r >= static_cast<int>(rows_.size())) {
      rows_.resize(static_cast<size_t>(r) + 1);
    }
    RowUse& use = rows_[static_cast<size_t>(r)];
    int& used = kind == FuKind::kAlu ? use.alu : kind == FuKind::kMul ? use.mul : use.ldst;
    if (used < per_line) {
      row = r;
      col = used;
      ++used;
      break;
    }
  }
  if (row < 0) return false;

  // Commit all table updates.
  input_ctx_ |= new_inputs;
  written_ = new_written;
  for (int k = 0; k < ndst; ++k) last_writer_row_[static_cast<size_t>(dests[k])] = row;
  if (isa::is_load(instr.op)) {
    last_mem_row_ = std::max(last_mem_row_, row);
  } else if (isa::is_store(instr.op)) {
    last_mem_row_ = std::max(last_mem_row_, row);
    last_store_row_ = std::max(last_store_row_, row);
  }
  if (uses_immediate(instr)) ++immediates_;

  rra::ArrayOp op;
  op.instr = instr;
  // Planted-bug hook for the differential fuzzer: corrupt the stored
  // semantics (never the dependence/resource bookkeeping above, which used
  // the pristine instruction) so the bug surfaces only as divergent
  // architectural state when the configuration executes.
  if (params_.fault == FaultInjection::kAddiuImmOffByOne && instr.op == Op::kAddiu) {
    op.instr.imm16 ^= 1;
  } else if (params_.fault == FaultInjection::kSubuSwapOperands &&
             instr.op == Op::kSubu) {
    std::swap(op.instr.rs, op.instr.rt);
  }
  op.pc = pc;
  op.row = row;
  op.col = col;
  op.kind = kind;
  op.bb_index = bb_;
  op.is_branch = is_branch;
  op.predicted_taken = predicted_taken;
  ops_.push_back(op);
  return true;
}

bool ConfigBuilder::try_add(const Instr& instr, uint32_t pc) {
  if (!translatable(instr.op)) return false;
  // Related-work restrictions (CCA-style arrays; see TranslatorParams).
  if (!params_.allow_mem && (isa::is_load(instr.op) || isa::is_store(instr.op))) return false;
  if (!params_.allow_shifts && isa::is_shift(instr.op)) return false;
  if (!params_.allow_mult &&
      (instr.op == Op::kMult || instr.op == Op::kMultu || instr.op == Op::kMfhi ||
       instr.op == Op::kMflo)) {
    return false;
  }
  return place(instr, pc, false, false);
}

bool ConfigBuilder::try_add_branch(const Instr& instr, uint32_t pc,
                                   bool predicted_taken) {
  if (!isa::is_branch(instr.op)) return false;
  // The and-link variants write $ra unconditionally — the array's branch
  // slots only evaluate a condition, so those stay on the processor.
  if (instr.op == Op::kBltzal || instr.op == Op::kBgezal) return false;
  if (!place(instr, pc, true, predicted_taken)) return false;
  ++bb_;  // subsequent ops belong to the next (speculative) basic block
  return true;
}

bool ConfigBuilder::replay(const rra::Configuration& config) {
  for (const rra::ArrayOp& op : config.ops) {
    const bool ok = op.is_branch ? try_add_branch(op.instr, op.pc, op.predicted_taken)
                                 : try_add(op.instr, op.pc);
    if (!ok) return false;
  }
  return true;
}

rra::Configuration ConfigBuilder::finalize(uint32_t end_pc) const {
  rra::Configuration config;
  config.start_pc = start_pc_;
  config.end_pc = end_pc;
  config.ops = ops_;
  config.num_bbs = bb_ + 1;
  config.input_regs = static_cast<int>(input_ctx_.count());
  config.output_regs = static_cast<int>(written_.count());
  config.immediates = immediates_;

  int rows_used = 0;
  for (const rra::ArrayOp& op : ops_) rows_used = std::max(rows_used, op.row + 1);
  config.rows_used = rows_used;
  config.row_kinds.assign(static_cast<size_t>(rows_used), rra::RowKind::kAlu);
  for (const rra::ArrayOp& op : ops_) {
    rra::RowKind& kind = config.row_kinds[static_cast<size_t>(op.row)];
    if (op.kind == FuKind::kLdSt) {
      kind = rra::RowKind::kMem;
    } else if (op.kind == FuKind::kMul && kind == rra::RowKind::kAlu) {
      kind = rra::RowKind::kMul;
    }
  }
  return config;
}

// --- Translator --------------------------------------------------------------

Translator::Translator(const TranslatorParams& params, ReconfigCache* cache,
                       BimodalPredictor* predictor)
    : params_(params), cache_(cache), predictor_(predictor) {}

void Translator::emit(obs::EventKind kind, uint32_t config_pc, int32_t ops,
                      int32_t depth) {
  if (events_ == nullptr) return;
  obs::Event e;
  e.kind = kind;
  e.config_pc = config_pc;
  e.ops = ops;
  e.depth = depth;
  events_->emit(e);
}

void Translator::finalize_capture(uint32_t end_pc) {
  if (!builder_) return;
  if (builder_->size() >= params_.min_instructions) {
    emit(obs::EventKind::kConfigFinalized, builder_->start_pc(),
         builder_->size(), builder_->num_bbs());
    if (extending_) {
      ++stats_.extensions_completed;
      emit(obs::EventKind::kExtensionCompleted, builder_->start_pc(),
           builder_->size(), builder_->num_bbs());
    }
    cache_->insert(builder_->finalize(end_pc));
    ++stats_.configs_inserted;
  } else {
    ++stats_.too_short;
    emit(obs::EventKind::kCaptureTooShort, builder_->start_pc(), builder_->size());
  }
  builder_.reset();
  extending_ = false;
}

void Translator::abort_capture() {
  if (builder_) {
    ++stats_.captures_aborted;
    emit(obs::EventKind::kCaptureAborted, builder_->start_pc(), builder_->size());
  }
  builder_.reset();
  extending_ = false;
}

void Translator::on_array_executed() {
  abort_capture();
  // The configuration's resume point behaves like a sequence boundary: the
  // next branch retirement will re-arm detection (handled by observe()).
  start_pending_ = false;
}

bool Translator::begin_extension(const rra::Configuration& config,
                                 const Instr& branch, uint32_t branch_pc,
                                 bool predicted_taken) {
  abort_capture();
  ConfigBuilder builder(config.start_pc, params_);
  if (!builder.replay(config) ||
      !builder.try_add_branch(branch, branch_pc, predicted_taken)) {
    return false;
  }
  builder_ = std::move(builder);
  extending_ = true;
  ++stats_.captures_started;
  emit(obs::EventKind::kExtensionBegun, config.start_pc,
       config.instruction_count(), config.num_bbs);
  return true;
}

TranslatorState Translator::export_state() const {
  TranslatorState s;
  s.stats = stats_;
  s.start_pending = start_pending_;
  s.extending = extending_;
  if (builder_) s.builder = builder_->export_state();
  return s;
}

void Translator::restore_state(const TranslatorState& state) {
  stats_ = state.stats;
  start_pending_ = state.start_pending;
  extending_ = state.extending;
  if (state.builder) {
    builder_.emplace(*state.builder, params_);
  } else {
    builder_.reset();
  }
}

void Translator::observe(const sim::StepInfo& info) {
  ++stats_.observed_instructions;
  const Instr& i = info.instr;
  const bool is_cond_branch = isa::is_branch(i.op);
  const bool is_flow = is_cond_branch || isa::is_jump(i.op);

  if (builder_) {
    if (is_cond_branch) {
      // The current basic block ends here. Merge it and keep going only if
      // speculation is enabled, depth remains, and this branch's counter is
      // saturated in the direction actually taken right now (otherwise the
      // following instructions are not the speculated path).
      bool merged = false;
      // Depth guard: max_spec_bbs counts SPECULATIVE blocks beyond the
      // entry block (the paper speculates "up to 3 basic blocks deep" on
      // top of the detected sequence). Merging is allowed while the
      // builder holds <= max_spec_bbs blocks, so a finished configuration
      // spans at most max_spec_bbs + 1 blocks total — pinned by
      // Translator.SpeculationDepthCountsBlocksBeyondTheFirst.
      if (params_.speculation && builder_->num_bbs() <= params_.max_spec_bbs) {
        const auto dir = predictor_->saturated_direction(info.pc);
        if (dir.has_value() && *dir == info.taken) {
          merged = builder_->try_add_branch(i, info.pc, *dir);
        }
      }
      if (!merged) {
        finalize_capture(info.pc);
        start_pending_ = true;  // next instruction follows a branch
      }
    } else if (!translatable(i.op)) {
      finalize_capture(info.pc);
      start_pending_ = is_flow;  // jumps also delimit basic blocks
    } else if (!builder_->try_add(i, info.pc)) {
      // Array capacity exhausted: save what fits (this instruction resumes
      // on the processor).
      finalize_capture(info.pc);
      start_pending_ = false;
    }
  } else {
    if (start_pending_ && !is_flow && translatable(i.op) &&
        cache_->probe(info.pc) == nullptr &&
        (params_.allowed_starts.empty() || params_.allowed_starts.count(info.pc) != 0)) {
      // A genuine sequence start with no stored configuration: the one
      // event that counts as a reconfiguration-cache miss.
      cache_->note_miss();
      builder_.emplace(info.pc, params_);
      ++stats_.captures_started;
      emit(obs::EventKind::kCaptureStarted, info.pc);
      start_pending_ = false;
      if (!builder_->try_add(i, info.pc)) abort_capture();
    } else if (is_flow) {
      start_pending_ = true;
    } else if (start_pending_ && cache_->contains(info.pc)) {
      // Already translated; wait for the next boundary.
      start_pending_ = false;
    }
  }

  if (is_cond_branch) predictor_->update(info.pc, info.taken);
}

}  // namespace dim::bt
