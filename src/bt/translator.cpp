#include "bt/translator.hpp"

#include <algorithm>
#include <utility>

#include "sim/executor.hpp"

namespace dim::bt {

using isa::FuKind;
using isa::Instr;
using isa::Op;

namespace {

// Does this instruction carry an immediate the array must store?
bool uses_immediate(const Instr& i) {
  switch (i.op) {
    case Op::kAddi: case Op::kAddiu: case Op::kSlti: case Op::kSltiu:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kLui:
    case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLbu: case Op::kLhu:
    case Op::kSb: case Op::kSh: case Op::kSw:
      return true;
    default:
      return false;
  }
}

// Instructions the array can host. mfhi/mflo become routing moves of the
// HI/LO context registers, so they are translatable even though
// isa::dim_supported (which classifies FU needs) excludes them.
bool translatable(Op op) {
  return isa::dim_supported(op) || op == Op::kMfhi || op == Op::kMflo;
}

FuKind fu_for(const Instr& i, bool is_branch) {
  if (is_branch) return FuKind::kAlu;  // branches compare on an ALU
  if (i.op == Op::kMfhi || i.op == Op::kMflo) return FuKind::kAlu;
  return isa::fu_kind(i.op);
}

// Can this instruction live inside an if-converted hammock arm? Same
// restrictions as try_add, plus: no control flow (arms are straight-line).
bool arm_op_allowed(const Instr& i, const TranslatorParams& p) {
  if (isa::is_branch(i.op) || isa::is_jump(i.op)) return false;
  if (!translatable(i.op)) return false;
  if (!p.allow_mem && (isa::is_load(i.op) || isa::is_store(i.op))) return false;
  if (!p.allow_shifts && isa::is_shift(i.op)) return false;
  if (!p.allow_mult &&
      (i.op == Op::kMult || i.op == Op::kMultu || i.op == Op::kMfhi ||
       i.op == Op::kMflo)) {
    return false;
  }
  return true;
}

// The diamond's internal unconditional jump: `b join` assembles to
// `beq $0, $0, disp`.
bool is_join_jump_instr(const Instr& i) {
  return i.op == Op::kBeq && i.rs == 0 && i.rt == 0;
}

}  // namespace

// --- ConfigBuilder -----------------------------------------------------------

ConfigBuilder::ConfigBuilder(uint32_t start_pc, const TranslatorParams& params)
    : params_(params), start_pc_(start_pc) {
  last_writer_row_.fill(-1);
}

ConfigBuilder::ConfigBuilder(const BuilderState& state, const TranslatorParams& params)
    : params_(params), start_pc_(state.start_pc) {
  ops_ = state.ops;
  rows_.reserve(state.rows.size());
  for (const std::array<int, 3>& r : state.rows) {
    rows_.push_back(RowUse{r[0], r[1], r[2]});
  }
  last_writer_row_ = state.last_writer_row;
  input_ctx_ = std::bitset<rra::kNumCtxRegs>(state.input_ctx_bits);
  written_ = std::bitset<rra::kNumCtxRegs>(state.written_bits);
  last_mem_row_ = state.last_mem_row;
  last_store_row_ = state.last_store_row;
  bb_ = state.bb;
  immediates_ = state.immediates;
  pred_slots_ = state.pred_slots;
}

BuilderState ConfigBuilder::export_state() const {
  BuilderState s;
  s.start_pc = start_pc_;
  s.ops = ops_;
  s.rows.reserve(rows_.size());
  for (const RowUse& r : rows_) s.rows.push_back({r.alu, r.mul, r.ldst});
  s.last_writer_row = last_writer_row_;
  s.input_ctx_bits = input_ctx_.to_ullong();
  s.written_bits = written_.to_ullong();
  s.last_mem_row = last_mem_row_;
  s.last_store_row = last_store_row_;
  s.bb = bb_;
  s.immediates = immediates_;
  s.pred_slots = pred_slots_;
  return s;
}

bool ConfigBuilder::place(const Instr& instr, uint32_t pc, const PlaceOpts& opts) {
  // The join jump compares $0 == $0 on an ALU, like any other branch slot.
  const FuKind kind =
      opts.is_join_jump ? FuKind::kAlu : fu_for(instr, opts.is_branch);

  // RAW dependences: the instruction must sit strictly below every producer.
  int srcs[2];
  const int nsrc = rra::array_srcs(instr, srcs);
  // Predicated ops additionally wait for their predicate line (placed
  // strictly below the pred-defining branch so the write-back gate is
  // resolved by the time the row drives the bus).
  int min_row = opts.min_row_floor;
  std::bitset<rra::kNumCtxRegs> new_inputs;
  for (int k = 0; k < nsrc; ++k) {
    const int s = srcs[k];
    if (s == 0) continue;  // $zero
    const int producer = last_writer_row_[static_cast<size_t>(s)];
    if (producer >= 0) {
      min_row = std::max(min_row, producer + 1);
    } else if (!input_ctx_.test(static_cast<size_t>(s))) {
      new_inputs.set(static_cast<size_t>(s));
    }
  }

  // Memory ordering: no disambiguation hardware — loads may not pass
  // stores, stores may not pass any memory operation.
  if (isa::is_load(instr.op)) {
    min_row = std::max(min_row, last_store_row_ + 1);
  } else if (isa::is_store(instr.op)) {
    min_row = std::max(min_row, last_mem_row_ + 1);
  }

  // Capacity checks that must not mutate state on failure.
  if ((input_ctx_ | new_inputs).count() >
      static_cast<size_t>(params_.max_input_regs)) {
    return false;
  }
  int dests[2];
  const int ndst = rra::array_dests(instr, dests);
  std::bitset<rra::kNumCtxRegs> new_written = written_;
  for (int k = 0; k < ndst; ++k) new_written.set(static_cast<size_t>(dests[k]));
  if (new_written.count() > static_cast<size_t>(params_.max_output_regs)) return false;
  if (params_.max_immediates > 0 && uses_immediate(instr) &&
      immediates_ >= params_.max_immediates) {
    return false;
  }

  // Resource table: first line >= min_row with a free unit of this group.
  const int per_line = kind == FuKind::kAlu    ? params_.shape.alus_per_line
                       : kind == FuKind::kMul  ? params_.shape.muls_per_line
                                               : params_.shape.ldsts_per_line;
  if (per_line <= 0) return false;
  int row = -1;
  int col = -1;
  for (int r = min_row; r < params_.shape.lines; ++r) {
    if (r >= static_cast<int>(rows_.size())) {
      rows_.resize(static_cast<size_t>(r) + 1);
    }
    RowUse& use = rows_[static_cast<size_t>(r)];
    int& used = kind == FuKind::kAlu ? use.alu : kind == FuKind::kMul ? use.mul : use.ldst;
    if (used < per_line) {
      row = r;
      col = used;
      ++used;
      break;
    }
  }
  if (row < 0) return false;

  // Commit all table updates.
  input_ctx_ |= new_inputs;
  written_ = new_written;
  const bool predicated_write = opts.pred_slot >= 0 && !opts.is_pred_def;
  for (int k = 0; k < ndst; ++k) {
    int& writer = last_writer_row_[static_cast<size_t>(dests[k])];
    // A predicated write may be squashed at runtime, so a later reader must
    // sit below BOTH the other arm's writer and this one: keep the deepest
    // writer row instead of overwriting it.
    writer = predicated_write ? std::max(writer, row) : row;
  }
  if (isa::is_load(instr.op)) {
    last_mem_row_ = std::max(last_mem_row_, row);
  } else if (isa::is_store(instr.op)) {
    last_mem_row_ = std::max(last_mem_row_, row);
    last_store_row_ = std::max(last_store_row_, row);
  }
  if (uses_immediate(instr)) ++immediates_;

  rra::ArrayOp op;
  op.instr = instr;
  // Planted-bug hook for the differential fuzzer: corrupt the stored
  // semantics (never the dependence/resource bookkeeping above, which used
  // the pristine instruction) so the bug surfaces only as divergent
  // architectural state when the configuration executes.
  if (params_.fault == FaultInjection::kAddiuImmOffByOne && instr.op == Op::kAddiu) {
    op.instr.imm16 ^= 1;
  } else if (params_.fault == FaultInjection::kSubuSwapOperands &&
             instr.op == Op::kSubu) {
    std::swap(op.instr.rs, op.instr.rt);
  }
  op.pc = pc;
  op.row = row;
  op.col = col;
  op.kind = kind;
  op.bb_index = bb_;
  op.is_branch = opts.is_branch;
  op.predicted_taken = opts.predicted_taken;
  op.pred_slot = opts.pred_slot;
  op.pred_when_taken = opts.pred_when_taken;
  op.is_pred_def = opts.is_pred_def;
  op.is_join_jump = opts.is_join_jump;
  ops_.push_back(op);
  return true;
}

bool ConfigBuilder::try_add(const Instr& instr, uint32_t pc) {
  if (!translatable(instr.op)) return false;
  // Related-work restrictions (CCA-style arrays; see TranslatorParams).
  if (!params_.allow_mem && (isa::is_load(instr.op) || isa::is_store(instr.op))) return false;
  if (!params_.allow_shifts && isa::is_shift(instr.op)) return false;
  if (!params_.allow_mult &&
      (instr.op == Op::kMult || instr.op == Op::kMultu || instr.op == Op::kMfhi ||
       instr.op == Op::kMflo)) {
    return false;
  }
  return place(instr, pc, PlaceOpts{});
}

bool ConfigBuilder::try_add_branch(const Instr& instr, uint32_t pc,
                                   bool predicted_taken) {
  if (!isa::is_branch(instr.op)) return false;
  // The and-link variants write $ra unconditionally — the array's branch
  // slots only evaluate a condition, so those stay on the processor.
  if (instr.op == Op::kBltzal || instr.op == Op::kBgezal) return false;
  PlaceOpts opts;
  opts.is_branch = true;
  opts.predicted_taken = predicted_taken;
  if (!place(instr, pc, opts)) return false;
  ++bb_;  // subsequent ops belong to the next (speculative) basic block
  return true;
}

bool ConfigBuilder::try_merge_hammock(const Instr& branch, uint32_t branch_pc,
                                      const std::vector<HammockOp>& not_taken_arm,
                                      const HammockOp* join_jump,
                                      const std::vector<HammockOp>& taken_arm) {
  const int cap = std::min(params_.max_pred_slots, rra::kMaxPredSlots);
  const int slot = pred_slots_;
  if (slot >= cap) return false;

  PlaceOpts def;
  def.is_branch = true;
  def.is_pred_def = true;
  def.pred_slot = slot;
  if (!place(branch, branch_pc, def)) return false;
  const int pred_row = ops_.back().row;

  PlaceOpts arm;
  arm.pred_slot = slot;
  arm.min_row_floor = pred_row + 1;
  arm.pred_when_taken = false;  // fall-through arm runs when NOT taken
  for (const HammockOp& h : not_taken_arm) {
    if (!arm_op_allowed(h.instr, params_)) return false;
    if (!place(h.instr, h.pc, arm)) return false;
  }
  if (join_jump != nullptr) {
    PlaceOpts jj = arm;
    jj.is_join_jump = true;
    if (!place(join_jump->instr, join_jump->pc, jj)) return false;
  }
  arm.pred_when_taken = true;
  for (const HammockOp& h : taken_arm) {
    if (!arm_op_allowed(h.instr, params_)) return false;
    if (!place(h.instr, h.pc, arm)) return false;
  }
  ++pred_slots_;
  return true;
}

bool ConfigBuilder::replay(const rra::Configuration& config) {
  // Pred-def rows seen so far, to restore the min-row floor of arm ops.
  std::array<int, rra::kMaxPredSlots> pred_row;
  pred_row.fill(-1);
  for (const rra::ArrayOp& op : config.ops) {
    PlaceOpts opts;
    opts.is_branch = op.is_branch;
    opts.predicted_taken = op.predicted_taken;
    opts.pred_slot = op.pred_slot;
    opts.pred_when_taken = op.pred_when_taken;
    opts.is_pred_def = op.is_pred_def;
    opts.is_join_jump = op.is_join_jump;
    if (op.pred_slot >= 0 && !op.is_pred_def) {
      opts.min_row_floor = pred_row[static_cast<size_t>(op.pred_slot)] + 1;
    }
    if (!place(op.instr, op.pc, opts)) return false;
    if (op.is_pred_def) pred_row[static_cast<size_t>(op.pred_slot)] = ops_.back().row;
    if (op.is_branch && !op.is_pred_def) ++bb_;
  }
  pred_slots_ = config.pred_slots;
  return true;
}

rra::Configuration ConfigBuilder::finalize(uint32_t end_pc) const {
  rra::Configuration config;
  config.start_pc = start_pc_;
  config.end_pc = end_pc;
  config.ops = ops_;
  config.num_bbs = bb_ + 1;
  config.input_regs = static_cast<int>(input_ctx_.count());
  config.output_regs = static_cast<int>(written_.count());
  config.immediates = immediates_;
  config.pred_slots = pred_slots_;

  int rows_used = 0;
  for (const rra::ArrayOp& op : ops_) rows_used = std::max(rows_used, op.row + 1);
  config.rows_used = rows_used;
  config.row_kinds.assign(static_cast<size_t>(rows_used), rra::RowKind::kAlu);
  for (const rra::ArrayOp& op : ops_) {
    rra::RowKind& kind = config.row_kinds[static_cast<size_t>(op.row)];
    if (op.kind == FuKind::kLdSt) {
      kind = rra::RowKind::kMem;
    } else if (op.kind == FuKind::kMul && kind == rra::RowKind::kAlu) {
      kind = rra::RowKind::kMul;
    }
  }
  return config;
}

// --- Translator --------------------------------------------------------------

Translator::Translator(const TranslatorParams& params, ReconfigCache* cache,
                       BimodalPredictor* predictor)
    : params_(params), cache_(cache), predictor_(predictor) {}

void Translator::emit(obs::EventKind kind, uint32_t config_pc, int32_t ops,
                      int32_t depth, uint32_t branch_pc) {
  if (events_ == nullptr) return;
  obs::Event e;
  e.kind = kind;
  e.config_pc = config_pc;
  e.ops = ops;
  e.depth = depth;
  e.branch_pc = branch_pc;
  events_->emit(e);
}

void Translator::finalize_capture(uint32_t end_pc) {
  if (!builder_) return;
  if (builder_->size() >= params_.min_instructions) {
    emit(obs::EventKind::kConfigFinalized, builder_->start_pc(),
         builder_->size(), builder_->num_bbs());
    if (extending_) {
      ++stats_.extensions_completed;
      emit(obs::EventKind::kExtensionCompleted, builder_->start_pc(),
           builder_->size(), builder_->num_bbs());
    }
    rra::Configuration config = builder_->finalize(end_pc);
    if (params_.exec_mode.mode == rra::ExecMode::kElastic) {
      // Config-build-time deadlock-freedom check: the dispatcher trusts the
      // memo and never re-analyzes a cached configuration.
      config.elastic_memo =
          rra::elastic_admissible(config, params_.exec_mode.fifo_capacity) ? 1 : 0;
      if (config.elastic_memo == 0) {
        emit(obs::EventKind::kElasticRejected, config.start_pc,
             config.instruction_count());
      }
    }
    cache_->insert(std::move(config));
    ++stats_.configs_inserted;
  } else {
    ++stats_.too_short;
    emit(obs::EventKind::kCaptureTooShort, builder_->start_pc(), builder_->size());
  }
  builder_.reset();
  extending_ = false;
  skipping_ = false;
}

void Translator::abort_capture() {
  if (builder_) {
    ++stats_.captures_aborted;
    emit(obs::EventKind::kCaptureAborted, builder_->start_pc(), builder_->size());
  }
  builder_.reset();
  extending_ = false;
  skipping_ = false;
}

void Translator::on_array_executed() {
  abort_capture();
  // The configuration's resume point behaves like a sequence boundary: the
  // next branch retirement will re-arm detection (handled by observe()).
  start_pending_ = false;
}

bool Translator::begin_extension(const rra::Configuration& config,
                                 const Instr& branch, uint32_t branch_pc,
                                 bool predicted_taken) {
  abort_capture();
  ConfigBuilder builder(config.start_pc, params_);
  if (!builder.replay(config) ||
      !builder.try_add_branch(branch, branch_pc, predicted_taken)) {
    return false;
  }
  builder_ = std::move(builder);
  extending_ = true;
  ++stats_.captures_started;
  emit(obs::EventKind::kExtensionBegun, config.start_pc,
       config.instruction_count(), config.num_bbs);
  return true;
}

TranslatorState Translator::export_state() const {
  TranslatorState s;
  s.stats = stats_;
  s.start_pending = start_pending_;
  s.extending = extending_;
  s.skipping = skipping_;
  s.skip_lo = skip_lo_;
  s.skip_until = skip_until_;
  if (builder_) s.builder = builder_->export_state();
  return s;
}

void Translator::restore_state(const TranslatorState& state) {
  stats_ = state.stats;
  start_pending_ = state.start_pending;
  extending_ = state.extending;
  skipping_ = state.skipping;
  skip_lo_ = state.skip_lo;
  skip_until_ = state.skip_until;
  if (state.builder) {
    builder_.emplace(*state.builder, params_);
  } else {
    builder_.reset();
  }
}

bool Translator::try_hammock_merge(const Instr& branch, uint32_t branch_pc) {
  if (!params_.predication || !code_reader_ || !builder_) return false;
  if (branch.op == Op::kBltzal || branch.op == Op::kBgezal) return false;
  const uint32_t target = sim::branch_target(branch, branch_pc);
  if (target <= branch_pc + 4) return false;  // backward or degenerate

  const int max_arm = params_.max_hammock_ops;
  const int fall_len = static_cast<int>((target - branch_pc) / 4) - 1;
  if (fall_len == 0) return false;  // branch-to-next: nothing to convert
  if (fall_len > max_arm + 1) {
    // Even a diamond (whose fall-through region carries one join jump on
    // top of the arm) cannot fit — the cap fallback the tests exercise.
    ++stats_.hammock_rejects;
    return false;
  }

  // Read the fall-through region [branch_pc+4, target).
  std::vector<HammockOp> fall;
  fall.reserve(static_cast<size_t>(fall_len));
  for (int k = 0; k < fall_len; ++k) {
    const uint32_t pc = branch_pc + 4 + static_cast<uint32_t>(k) * 4;
    std::optional<Instr> instr = code_reader_(pc);
    if (!instr) return false;
    fall.push_back(HammockOp{*instr, pc});
  }

  std::vector<HammockOp> not_taken = fall;
  std::optional<HammockOp> join_jump;
  std::vector<HammockOp> taken;
  uint32_t join_pc = target;

  const bool straight = std::all_of(fall.begin(), fall.end(), [&](const HammockOp& h) {
    return arm_op_allowed(h.instr, params_);
  });
  if (!straight) {
    // Diamond: every fall-through op but the last is straight-line, and the
    // last is `b join` (beq $0,$0) hopping over the taken arm.
    const HammockOp& last = fall.back();
    const bool body_ok =
        std::all_of(fall.begin(), fall.end() - 1, [&](const HammockOp& h) {
          return arm_op_allowed(h.instr, params_);
        });
    if (!body_ok || !is_join_jump_instr(last.instr)) {
      ++stats_.hammock_rejects;
      return false;
    }
    join_pc = sim::branch_target(last.instr, last.pc);
    if (join_pc <= target) {
      ++stats_.hammock_rejects;
      return false;
    }
    const int taken_len = static_cast<int>((join_pc - target) / 4);
    if (fall_len - 1 + taken_len > max_arm) {
      ++stats_.hammock_rejects;
      return false;
    }
    taken.reserve(static_cast<size_t>(taken_len));
    for (int k = 0; k < taken_len; ++k) {
      const uint32_t pc = target + static_cast<uint32_t>(k) * 4;
      std::optional<Instr> instr = code_reader_(pc);
      if (!instr || !arm_op_allowed(*instr, params_)) {
        ++stats_.hammock_rejects;
        return false;
      }
      taken.push_back(HammockOp{*instr, pc});
    }
    not_taken.pop_back();
    join_jump = last;
  } else if (fall_len > max_arm) {
    ++stats_.hammock_rejects;
    return false;
  }

  // Merge into a copy: a failed attempt must leave the capture exactly as
  // the speculation/finalize path expects it.
  ConfigBuilder trial = *builder_;
  if (!trial.try_merge_hammock(branch, branch_pc, not_taken,
                               join_jump ? &*join_jump : nullptr, taken)) {
    ++stats_.hammock_rejects;
    return false;
  }
  builder_ = std::move(trial);
  skipping_ = true;
  skip_lo_ = branch_pc + 4;
  skip_until_ = join_pc;
  ++stats_.hammocks_merged;
  emit(obs::EventKind::kHammockMerged, builder_->start_pc(),
       static_cast<int32_t>(not_taken.size() + taken.size()),
       builder_->pred_slots(), branch_pc);
  return true;
}

void Translator::observe(const sim::StepInfo& info) {
  ++stats_.observed_instructions;
  const Instr& i = info.instr;
  const bool is_cond_branch = isa::is_branch(i.op);
  const bool is_flow = is_cond_branch || isa::is_jump(i.op);

  if (builder_ && skipping_) {
    if (info.pc == skip_until_) {
      // The hammock's join point: both arms are already placed, resume the
      // normal capture with this instruction.
      skipping_ = false;
    } else if (info.pc >= skip_lo_ && info.pc < skip_until_) {
      // Inside the merged hammock: whichever arm retires on the processor
      // is already in the configuration. Only the predictor observes it
      // (the join jump included — exactly what the software path trains).
      if (is_cond_branch) predictor_->update(info.pc, info.taken);
      return;
    } else {
      // Control left the hammock region some other way; drop the capture
      // and let the normal detection logic classify this instruction.
      abort_capture();
    }
  }

  if (builder_) {
    if (is_cond_branch) {
      // The current basic block ends here. Merge it and keep going only if
      // speculation is enabled, depth remains, and this branch's counter is
      // saturated in the direction actually taken right now (otherwise the
      // following instructions are not the speculated path).
      bool merged = false;
      // Depth guard: max_spec_bbs counts SPECULATIVE blocks beyond the
      // entry block (the paper speculates "up to 3 basic blocks deep" on
      // top of the detected sequence). Merging is allowed while the
      // builder holds <= max_spec_bbs blocks, so a finished configuration
      // spans at most max_spec_bbs + 1 blocks total — pinned by
      // Translator.SpeculationDepthCountsBlocksBeyondTheFirst.
      if (params_.speculation && builder_->num_bbs() <= params_.max_spec_bbs) {
        const auto dir = predictor_->saturated_direction(info.pc);
        if (dir.has_value() && *dir == info.taken) {
          merged = builder_->try_add_branch(i, info.pc, *dir);
        }
      }
      // If-conversion is tried only after the speculation path declined, so
      // enabling predication never changes what speculation alone would do.
      if (!merged) merged = try_hammock_merge(i, info.pc);
      if (!merged) {
        finalize_capture(info.pc);
        start_pending_ = true;  // next instruction follows a branch
      }
    } else if (!translatable(i.op)) {
      finalize_capture(info.pc);
      start_pending_ = is_flow;  // jumps also delimit basic blocks
    } else if (!builder_->try_add(i, info.pc)) {
      // Array capacity exhausted: save what fits (this instruction resumes
      // on the processor).
      finalize_capture(info.pc);
      start_pending_ = false;
    }
  } else {
    if (start_pending_ && !is_flow && translatable(i.op) &&
        cache_->probe(info.pc) == nullptr &&
        (params_.allowed_starts.empty() || params_.allowed_starts.count(info.pc) != 0)) {
      // A genuine sequence start with no stored configuration: the one
      // event that counts as a reconfiguration-cache miss.
      cache_->note_miss();
      builder_.emplace(info.pc, params_);
      ++stats_.captures_started;
      emit(obs::EventKind::kCaptureStarted, info.pc);
      start_pending_ = false;
      if (!builder_->try_add(i, info.pc)) abort_capture();
    } else if (is_flow) {
      start_pending_ = true;
    } else if (start_pending_ && cache_->contains(info.pc)) {
      // Already translated; wait for the next boundary.
      start_pending_ = false;
    }
  }

  if (is_cond_branch) predictor_->update(info.pc, info.taken);
}

}  // namespace dim::bt
