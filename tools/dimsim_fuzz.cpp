// dimsim-fuzz: differential fuzzing of the accelerated system.
//
// Generates seeded structured programs (src/fuzz/generator.hpp), runs each
// on the plain pipeline and on MIPS+DIM+array across a configuration
// matrix, diffs the architectural state (registers, HI/LO, memory image,
// output, retired-instruction count, termination), and delta-debugs any
// failing program down to a near-minimal reproducer. Campaigns fan out
// over the SweepEngine worker pool; results — including --json output —
// are byte-identical for any --threads value.
//
// --cmp-dispatch switches the oracle: instead of accel-vs-baseline
// transparency, every seed is run with the superblock trace dispatch on
// and off (sim/trace_cache.hpp) and the two runs must be bit-identical —
// state, memory, cycles, stats, event streams — on the plain Machine and
// at every matrix point. SMC-patching programs (--smc) are only legal
// there. This mode is the merge gate for trace-engine changes.
//
// Usage:
//   dimsim-fuzz [--seeds N] [--seed-start K] [--threads N]
//               [--matrix full|quick] [--no-shrink] [--repro FILE]
//               [--replay FILE] [--inject-fault none|addiu-imm|subu-swap]
//               [--max-instructions N] [--json] [--self-test]
//               [--cmp-dispatch] [--code-stores] [--smc]
//               [--hammocks] [--nested-hammocks]
//               [--long-chains] [--lane-div]
//
// Exit codes: 0 = no divergence, 1 = divergence found (or self-test
// failed), 2 = usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fuzz/campaign.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dimsim-fuzz [--seeds N] [--seed-start K] [--threads N]\n"
    "                   [--matrix full|quick] [--no-shrink] [--repro FILE]\n"
    "                   [--replay FILE] [--inject-fault none|addiu-imm|subu-swap]\n"
    "                   [--max-instructions N] [--json] [--self-test]\n"
    "                   [--cmp-dispatch] [--code-stores] [--smc]\n"
    "                   [--hammocks] [--nested-hammocks]\n"
    "                   [--long-chains] [--lane-div]\n";

using dim::bt::FaultInjection;

bool parse_fault(const std::string& name, FaultInjection* out) {
  if (name == "none") *out = FaultInjection::kNone;
  else if (name == "addiu-imm") *out = FaultInjection::kAddiuImmOffByOne;
  else if (name == "subu-swap") *out = FaultInjection::kSubuSwapOperands;
  else return false;
  return true;
}

void print_failure(const dim::fuzz::CampaignFailure& f) {
  std::fprintf(stderr, "seed %llu diverged at %s: %s — %s\n",
               static_cast<unsigned long long>(f.seed),
               f.divergence.point_label.c_str(),
               dim::fuzz::divergence_field_name(f.divergence.field),
               f.divergence.detail.c_str());
  if (f.shrunk) {
    std::fprintf(stderr, "  shrunk %d -> %d instructions (%d candidates tried)\n",
                 f.program.instruction_count(), f.shrunk_program.instruction_count(),
                 f.shrink_stats.candidates_tried);
  }
  for (const dim::obs::Event& e : f.divergence.recent_events) {
    std::fprintf(stderr, "  event: %s\n", dim::obs::format_event(e).c_str());
  }
}

// Replays a reproducer (or any .s file) through the oracle.
int replay(const std::string& path, const std::vector<dim::fuzz::MatrixPoint>& matrix,
           const dim::fuzz::OracleOptions& oracle) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::stringstream source;
  source << in.rdbuf();
  const dim::fuzz::OracleResult r =
      dim::fuzz::check_program(source.str(), matrix, oracle);
  if (r.inconclusive) {
    std::fprintf(stderr, "inconclusive: %s\n", r.inconclusive_reason.c_str());
    return 2;
  }
  if (!r.divergence.found) {
    std::fprintf(stderr, "%s: transparent at every matrix point\n", path.c_str());
    return 0;
  }
  std::fprintf(stderr, "%s diverged at %s: %s — %s\n", path.c_str(),
               r.divergence.point_label.c_str(),
               dim::fuzz::divergence_field_name(r.divergence.field),
               r.divergence.detail.c_str());
  for (const dim::obs::Event& e : r.divergence.recent_events) {
    std::fprintf(stderr, "  event: %s\n", dim::obs::format_event(e).c_str());
  }
  return 1;
}

// The acceptance gate, self-contained: the planted translator bug must be
// found and shrunk to <= 12 instructions within a small seed budget, and a
// clean campaign over the same seeds must report zero divergences.
int self_test(unsigned threads) {
  dim::fuzz::CampaignOptions options;
  options.seeds = 40;
  options.threads = threads;
  options.matrix = dim::fuzz::quick_matrix();
  options.oracle.fault = FaultInjection::kAddiuImmOffByOne;

  std::fprintf(stderr, "[1/3] planted-bug campaign (fault=addiu-imm, %d seeds)...\n",
               options.seeds);
  const dim::fuzz::CampaignResult buggy = dim::fuzz::run_campaign(options);
  if (buggy.divergent_seeds == 0 || buggy.failures.empty()) {
    std::fprintf(stderr, "FAIL: planted translator bug was not detected\n");
    return 1;
  }
  const dim::fuzz::CampaignFailure& f = buggy.failures.front();
  print_failure(f);
  if (!f.shrunk || f.shrunk_program.instruction_count() > 12) {
    std::fprintf(stderr, "FAIL: reproducer has %d instructions (want <= 12)\n",
                 f.shrunk_program.instruction_count());
    return 1;
  }

  std::fprintf(stderr, "[2/3] shrunk reproducer still triggers the bug...\n");
  const dim::fuzz::OracleResult again = dim::fuzz::check_program(
      f.shrunk_program.render(), dim::fuzz::quick_matrix(), options.oracle);
  if (!again.divergence.found) {
    std::fprintf(stderr, "FAIL: shrunk reproducer no longer diverges\n");
    return 1;
  }

  std::fprintf(stderr, "[3/3] clean campaign over the same seeds...\n");
  options.oracle.fault = FaultInjection::kNone;
  const dim::fuzz::CampaignResult clean = dim::fuzz::run_campaign(options);
  if (!clean.clean()) {
    std::fprintf(stderr, "FAIL: clean campaign reported %d divergent seeds\n",
                 clean.divergent_seeds);
    return 1;
  }
  std::fprintf(stderr,
               "self-test OK: bug found (seed %llu), shrunk to %d instructions, "
               "clean run transparent\n",
               static_cast<unsigned long long>(f.seed),
               f.shrunk_program.instruction_count());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  dim::fuzz::CampaignOptions options;
  options.seeds = 100;
  std::string repro_path;
  std::string replay_path;
  std::string matrix_name = "full";
  bool json = false;
  bool run_self_test = false;
  bool cmp_dispatch = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seeds" && i + 1 < argc) {
      options.seeds = std::atoi(argv[++i]);
    } else if (arg == "--seed-start" && i + 1 < argc) {
      options.seed_start = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--threads" && i + 1 < argc) {
      options.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--matrix" && i + 1 < argc) {
      matrix_name = argv[++i];
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--repro" && i + 1 < argc) {
      repro_path = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (arg == "--inject-fault" && i + 1 < argc) {
      if (!parse_fault(argv[++i], &options.oracle.fault)) {
        std::fprintf(stderr, "%s", kUsage);
        return 2;
      }
    } else if (arg == "--max-instructions" && i + 1 < argc) {
      options.oracle.max_instructions = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--self-test") {
      run_self_test = true;
    } else if (arg == "--cmp-dispatch") {
      cmp_dispatch = true;
    } else if (arg == "--code-stores") {
      options.gen.code_page_stores = true;
    } else if (arg == "--smc") {
      options.gen.smc_patch_stores = true;
    } else if (arg == "--hammocks") {
      options.gen.hammocks = true;
    } else if (arg == "--nested-hammocks") {
      options.gen.nested_hammocks = true;
    } else if (arg == "--long-chains") {
      options.gen.long_chains = true;
    } else if (arg == "--lane-div") {
      options.gen.lane_divergence = true;
    } else {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    }
  }

  if (run_self_test) return self_test(options.threads);

  if (matrix_name == "full") {
    options.matrix = dim::fuzz::full_matrix();
  } else if (matrix_name == "quick") {
    options.matrix = dim::fuzz::quick_matrix();
  } else {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  if (!replay_path.empty()) {
    return replay(replay_path, options.matrix, options.oracle);
  }
  if (options.seeds <= 0) {
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }
  if (options.gen.smc_patch_stores && !cmp_dispatch) {
    // Real SMC is not transparent through a stale rcache configuration —
    // it is only a valid differential against the other dispatch mode.
    std::fprintf(stderr, "--smc requires --cmp-dispatch\n");
    return 2;
  }

  const dim::fuzz::CampaignResult result = cmp_dispatch
                                               ? dim::fuzz::run_dispatch_campaign(options)
                                               : dim::fuzz::run_campaign(options);

  if (json) {
    dim::fuzz::write_campaign_json(std::cout, result);
  } else {
    std::fprintf(stderr,
                 "%d seeds x %zu matrix points: %d divergent, %d inconclusive\n",
                 result.seeds_run, options.matrix.size(), result.divergent_seeds,
                 result.inconclusive_seeds);
  }
  for (const dim::fuzz::CampaignFailure& f : result.failures) print_failure(f);

  if (!result.failures.empty() && !repro_path.empty()) {
    std::ofstream out(repro_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", repro_path.c_str());
      return 2;
    }
    dim::fuzz::write_repro_file(out, result.failures.front(), options.oracle);
    std::fprintf(stderr, "reproducer written to %s\n", repro_path.c_str());
  }
  return result.clean() ? 0 : 1;
}
