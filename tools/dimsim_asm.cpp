// dimsim-asm: assemble a MIPS source file to a loadable image listing.
//
// Usage: dimsim-asm [options] file.s
//   --symbols        also print the symbol table
//   --segments       also print segment summaries
//   -o FILE          write the image (text format, see below) to FILE
//
// Image format (consumed by dimsim-run --image and Program-compatible):
//   image v1 <entry>
//   segment <base> <byte-count>
//   <hex bytes, 16 per line>
//   ... (per segment)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

namespace {

void write_image(std::ostream& out, const dim::asmblr::Program& program) {
  out << "image v1 " << program.entry << "\n";
  for (const auto& seg : program.segments) {
    out << "segment " << seg.base << " " << seg.bytes.size() << "\n";
    for (size_t i = 0; i < seg.bytes.size(); ++i) {
      char buf[4];
      std::snprintf(buf, sizeof buf, "%02x", seg.bytes[i]);
      out << buf << (((i + 1) % 16 == 0) ? "\n" : " ");
    }
    if (seg.bytes.size() % 16 != 0) out << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string input, output;
  bool symbols = false, segments = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--symbols") {
      symbols = true;
    } else if (arg == "--segments") {
      segments = true;
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: dimsim-asm [--symbols] [--segments] [-o out.img] file.s\n");
      return 2;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "usage: dimsim-asm [--symbols] [--segments] [-o out.img] file.s\n");
    return 2;
  }

  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }
  std::stringstream source;
  source << in.rdbuf();

  dim::asmblr::Program program;
  try {
    program = dim::asmblr::assemble(source.str());
  } catch (const dim::asmblr::AsmError& e) {
    std::fprintf(stderr, "%s: %s\n", input.c_str(), e.what());
    return 1;
  }

  std::printf("entry: 0x%08x, %zu bytes total\n", program.entry, program.image_bytes());
  if (segments) {
    for (const auto& seg : program.segments) {
      std::printf("segment base=0x%08x size=%zu\n", seg.base, seg.bytes.size());
    }
  }
  if (symbols) {
    std::printf("symbols:\n");
    for (const auto& [name, addr] : program.symbols) {
      std::printf("  0x%08x  %s\n", addr, name.c_str());
    }
  }
  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", output.c_str());
      return 1;
    }
    write_image(out, program);
    std::printf("wrote %s\n", output.c_str());
  }
  return 0;
}
