// dimsim-analyze: DIM planning and observation.
//
// Static mode (default): walks the text segment of an assembled program,
// splits it into static basic blocks, runs the DIM placement over each
// block, and reports what the hardware would find: translatable fraction,
// rows needed, functional-unit pressure against a chosen array shape. The
// offline counterpart of the paper's §5.1 analysis — useful to size an
// array for a binary before running it.
//
// Dynamic mode (--events / --hot-configs): actually RUNS the program on
// the accelerated system with the configuration-lifecycle event stream
// attached (see docs/observability.md). --events FILE dumps the raw
// stream as JSON-lines; --hot-configs N prints the top-N configurations
// by array cycles with their full cycle breakdown (exec / reconfig /
// dcache / finalize / misspec — the components sum to each config's
// contribution to array_cycles).
//
// Snapshot mode (--snapshot FILE): human-readable dump of a persistence
// artifact written by the snap subsystem (docs/persistence.md) — full
// snapshots and warm-start files get their header, statistics, cached
// configurations (start PC, rows, ops) and predictor summary printed;
// corrupt files are reported with the loader's precise failure class.
//
// Usage: dimsim-analyze (file.s | --workload NAME) [--config 1|2|3]
//                       [--json] [--events FILE] [--hot-configs N]
//                       [--scale N]
//        dimsim-analyze --snapshot FILE
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "accel/stats_io.hpp"
#include "accel/system.hpp"
#include "asm/assembler.hpp"
#include "bt/translator.hpp"
#include "isa/decoder.hpp"
#include "obs/event.hpp"
#include "obs/profile.hpp"
#include "rra/array_shape.hpp"
#include "snap/io.hpp"
#include "snap/snapshot.hpp"
#include "snap/warmstart.hpp"
#include "work/workload.hpp"

namespace {

using dim::isa::Instr;
using dim::isa::Op;

struct BlockPlan {
  uint32_t start = 0;
  int instructions = 0;
  int translated = 0;
  int rows = 0;
  int alu = 0, mul = 0, mem = 0;
  bool cacheable = false;  // >3 translated instructions
};

constexpr const char* kUsage =
    "usage: dimsim-analyze (file.s | --workload NAME) [--config 1|2|3] "
    "[--json] [--events FILE] [--hot-configs N] [--scale N]\n"
    "       dimsim-analyze --snapshot FILE\n";

void print_rcache_entries(const std::vector<dim::snap::SnapshotRcacheEntry>& entries) {
  std::printf("  %-12s %-12s %5s %5s %4s\n", "start", "end", "ops", "rows", "bbs");
  for (const auto& e : entries) {
    std::printf("  0x%08x   0x%08x   %5d %5d %4d\n", e.start_pc, e.end_pc, e.ops,
                e.rows_used, e.num_bbs);
  }
}

// Dumps one persistence artifact. The artifact kind is taken from the
// header, so snapshots, warm-start files and result-store cells all work.
int run_snapshot_dump(const std::string& path) {
  dim::snap::ArtifactKind kind;
  std::vector<uint8_t> payload;
  try {
    payload = dim::snap::read_artifact_file(path, &kind);
  } catch (const dim::snap::SnapshotError& e) {
    std::fprintf(stderr, "%s: rejected: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("%s: dimsim persistence artifact\n", path.c_str());
  std::printf("  format version %u, kind %s, payload %zu bytes, CRC-32 0x%08x\n\n",
              dim::snap::kFormatVersion, dim::snap::artifact_kind_name(kind),
              payload.size(), dim::snap::crc32(payload.data(), payload.size()));
  try {
    switch (kind) {
      case dim::snap::ArtifactKind::kSnapshot: {
        const dim::snap::SnapshotInfo info = dim::snap::inspect_snapshot(payload);
        std::printf("program hash       0x%016llx\n",
                    static_cast<unsigned long long>(info.program_hash));
        std::printf("system fingerprint 0x%016llx\n\n",
                    static_cast<unsigned long long>(info.system_fingerprint));
        std::printf("cpu: pc 0x%08x, %s, %zu output bytes\n", info.cpu.pc,
                    info.cpu.halted ? "halted" : "running", info.cpu.output.size());
        std::printf("memory: %zu pages (%zu KiB)\n", info.memory_pages,
                    info.memory_pages * 64);
        std::printf("run so far: %llu instructions, %llu cycles "
                    "(%llu processor + %llu array), %llu activations\n",
                    static_cast<unsigned long long>(info.stats.instructions),
                    static_cast<unsigned long long>(info.stats.cycles),
                    static_cast<unsigned long long>(info.stats.proc_cycles),
                    static_cast<unsigned long long>(info.stats.array_cycles),
                    static_cast<unsigned long long>(info.stats.array_activations));
        std::printf("predictor: %zu branches tracked, %zu saturated\n",
                    info.predictor_branches, info.predictor_saturated);
        std::printf("translator: %llu observed, %llu captures, %llu inserted, "
                    "%llu aborted, %llu extensions\n",
                    static_cast<unsigned long long>(
                        info.translator_stats.observed_instructions),
                    static_cast<unsigned long long>(
                        info.translator_stats.captures_started),
                    static_cast<unsigned long long>(
                        info.translator_stats.configs_inserted),
                    static_cast<unsigned long long>(
                        info.translator_stats.captures_aborted),
                    static_cast<unsigned long long>(
                        info.translator_stats.extensions_completed));
        if (info.capture_in_flight) {
          std::printf("in-flight capture at 0x%08x (%d ops placed)\n",
                      info.capture_pc, info.capture_ops);
        }
        std::printf("\nreconfiguration cache: %zu entries (oldest first), "
                    "%llu hits / %llu misses / %llu evictions\n",
                    info.rcache_entries.size(),
                    static_cast<unsigned long long>(info.rcache_counters.hits),
                    static_cast<unsigned long long>(info.rcache_counters.misses),
                    static_cast<unsigned long long>(info.rcache_counters.evictions));
        print_rcache_entries(info.rcache_entries);
        return 0;
      }
      case dim::snap::ArtifactKind::kWarmStart: {
        const dim::snap::WarmStartInfo info = dim::snap::inspect_warm_start(payload);
        std::printf("program hash            0x%016llx\n",
                    static_cast<unsigned long long>(info.program_hash));
        std::printf("translation fingerprint 0x%016llx\n\n",
                    static_cast<unsigned long long>(info.translation_fingerprint));
        std::printf("%zu translated configurations (preload order):\n",
                    info.entries.size());
        print_rcache_entries(info.entries);
        return 0;
      }
      case dim::snap::ArtifactKind::kResultCell:
        std::printf("memoized sweep cell (see snap::ResultStore); keyed by the "
                    "filename, consumed by --result-store benches\n");
        return 0;
    }
  } catch (const dim::snap::SnapshotError& e) {
    std::fprintf(stderr, "%s: rejected: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::fprintf(stderr, "%s: unknown artifact kind\n", path.c_str());
  return 1;
}

// Runs the program with a recording sink attached, dumps the stream and/or
// the per-configuration aggregation table.
int run_dynamic(const dim::asmblr::Program& program, const dim::rra::ArrayShape& shape,
                const std::string& events_path, int hot_configs, bool json) {
  dim::obs::RecordingSink sink;
  dim::accel::SystemConfig config;
  config.shape = shape;
  config.event_sink = &sink;
  const dim::accel::AccelStats stats = dim::accel::run_accelerated(program, config);

  if (!events_path.empty()) {
    std::ofstream out(events_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", events_path.c_str());
      return 1;
    }
    dim::obs::write_events_jsonl(out, sink.events());
    std::fprintf(stderr, "%zu events written to %s\n", sink.events().size(),
                 events_path.c_str());
  }

  dim::obs::ProfileTable table;
  table.add_all(sink.events());

  if (json) {
    std::cout << "{\n  \"stats\": {\n";
    dim::accel::write_json_fields(std::cout, stats, "    ");
    std::cout << "  },\n  \"profile\": ";
    std::ostringstream profile;
    dim::obs::write_profile_json(profile, table);
    std::cout << profile.str() << "}\n";
  } else {
    dim::accel::write_report(std::cout, stats);
    std::cout << "\nhot configurations (by array cycles):\n";
    dim::obs::write_profile_table(std::cout, table,
                                  hot_configs > 0 ? static_cast<size_t>(hot_configs) : 0);
  }

  // The aggregation invariant the table is useful for: per-config cycle
  // breakdowns sum to the run's total array cycles.
  if (table.total_array_cycles() != stats.array_cycles) {
    std::fprintf(stderr,
                 "cycle accounting mismatch: profile %llu != run %llu array cycles\n",
                 static_cast<unsigned long long>(table.total_array_cycles()),
                 static_cast<unsigned long long>(stats.array_cycles));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string workload;
  std::string events_path;
  std::string snapshot_path;
  int hot_configs = -1;  // -1 = not requested
  int config_id = 2;
  int scale = 1;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config" && i + 1 < argc) {
      config_id = std::atoi(argv[++i]);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
    } else if (arg == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (arg == "--hot-configs" && i + 1 < argc) {
      hot_configs = std::atoi(argv[++i]);
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "%s", kUsage);
      return 2;
    } else {
      input = arg;
    }
  }
  if (!snapshot_path.empty()) return run_snapshot_dump(snapshot_path);
  if (input.empty() == workload.empty()) {  // exactly one source required
    std::fprintf(stderr, "%s", kUsage);
    return 2;
  }

  std::string source_text;
  if (!workload.empty()) {
    try {
      source_text = dim::work::make_workload(workload, scale).source;
      input = "workload:" + workload;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  } else {
    std::ifstream in(input);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", input.c_str());
      return 1;
    }
    std::stringstream source;
    source << in.rdbuf();
    source_text = source.str();
  }

  dim::asmblr::Program program;
  try {
    program = dim::asmblr::assemble(source_text);
  } catch (const dim::asmblr::AsmError& e) {
    std::fprintf(stderr, "%s: %s\n", input.c_str(), e.what());
    return 1;
  }

  const dim::rra::ArrayShape shape = config_id == 1   ? dim::rra::ArrayShape::config1()
                                     : config_id == 3 ? dim::rra::ArrayShape::config3()
                                                      : dim::rra::ArrayShape::config2();

  if (!events_path.empty() || hot_configs >= 0) {
    return run_dynamic(program, shape, events_path, hot_configs, json);
  }

  // Decode the text segment and find static basic-block leaders: the entry,
  // every branch/jump target, and every instruction after a control
  // transfer.
  const auto& text = program.segments[0];
  std::map<uint32_t, Instr> instrs;
  for (size_t off = 0; off + 4 <= text.bytes.size(); off += 4) {
    const uint32_t pc = text.base + static_cast<uint32_t>(off);
    const uint32_t word = static_cast<uint32_t>(text.bytes[off]) |
                          (static_cast<uint32_t>(text.bytes[off + 1]) << 8) |
                          (static_cast<uint32_t>(text.bytes[off + 2]) << 16) |
                          (static_cast<uint32_t>(text.bytes[off + 3]) << 24);
    instrs.emplace(pc, dim::isa::decode(word));
  }
  std::set<uint32_t> leaders = {program.entry};
  for (const auto& [pc, i] : instrs) {
    if (dim::isa::is_branch(i.op)) {
      leaders.insert(pc + 4 + (static_cast<uint32_t>(i.simm()) << 2));
      leaders.insert(pc + 4);
    } else if (dim::isa::is_jump(i.op)) {
      if (i.op == Op::kJ || i.op == Op::kJal) {
        leaders.insert(((pc + 4) & 0xF0000000u) | (i.target26 << 2));
      }
      leaders.insert(pc + 4);
    }
  }

  // Plan each static block with the DIM placement rules.
  dim::bt::TranslatorParams params;
  params.shape = shape;
  std::vector<BlockPlan> plans;
  int total_instr = 0, total_translated = 0, cacheable = 0;
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    const uint32_t start = *it;
    if (instrs.find(start) == instrs.end()) continue;
    BlockPlan plan;
    plan.start = start;
    dim::bt::ConfigBuilder builder(start, params);
    for (uint32_t pc = start; instrs.count(pc) != 0; pc += 4) {
      if (pc != start && leaders.count(pc) != 0) break;  // next block
      const Instr& i = instrs.at(pc);
      ++plan.instructions;
      if (dim::isa::is_branch(i.op) || dim::isa::is_jump(i.op) ||
          i.op == Op::kSyscall || i.op == Op::kBreak || i.op == Op::kInvalid) {
        break;
      }
      if (builder.try_add(i, pc)) {
        ++plan.translated;
        switch (dim::isa::fu_kind(i.op)) {
          case dim::isa::FuKind::kMul: ++plan.mul; break;
          case dim::isa::FuKind::kLdSt: ++plan.mem; break;
          default: ++plan.alu; break;
        }
      }
    }
    const auto config = builder.finalize(0);
    plan.rows = config.rows_used;
    plan.cacheable = plan.translated >= params.min_instructions;
    total_instr += plan.instructions;
    total_translated += plan.translated;
    if (plan.cacheable) ++cacheable;
    plans.push_back(plan);
  }

  if (json) {
    std::printf("{\n  \"input\": \"%s\",\n  \"config\": %d,\n  \"lines\": %d,\n",
                input.c_str(), config_id, shape.lines);
    std::printf("  \"blocks\": [\n");
    for (size_t i = 0; i < plans.size(); ++i) {
      const BlockPlan& p = plans[i];
      std::printf("    {\"start\": %u, \"instructions\": %d, \"translated\": %d, "
                  "\"rows\": %d, \"alu\": %d, \"mul\": %d, \"mem\": %d, "
                  "\"cacheable\": %s}%s\n",
                  p.start, p.instructions, p.translated, p.rows, p.alu, p.mul, p.mem,
                  p.cacheable ? "true" : "false", i + 1 < plans.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"total_instructions\": %d,\n  \"total_translated\": %d,\n"
                "  \"cacheable_blocks\": %d\n}\n",
                total_instr, total_translated, cacheable);
    return 0;
  }

  std::printf("static DIM analysis of %s against configuration #%d (%d lines)\n\n",
              input.c_str(), config_id, shape.lines);
  std::printf("%-12s %6s %6s %5s %5s %5s %5s %10s\n", "block", "instr", "xlate", "rows",
              "alu", "mul", "mem", "cacheable");
  for (const BlockPlan& p : plans) {
    std::printf("0x%08x %6d %6d %5d %5d %5d %5d %10s\n", p.start, p.instructions,
                p.translated, p.rows, p.alu, p.mul, p.mem, p.cacheable ? "yes" : "-");
  }
  std::printf("\n%zu static blocks; %d/%d instructions translatable (%.1f%%); "
              "%d blocks cacheable (>3 instructions)\n",
              plans.size(), total_translated, total_instr,
              total_instr ? 100.0 * total_translated / total_instr : 0.0, cacheable);
  return 0;
}
