// dimsim-disasm: disassemble the text segment of an assembled source file
// (or every word of a chosen segment), producing a listing.
//
// Usage: dimsim-disasm file.s [--all-segments]
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

int main(int argc, char** argv) {
  std::string input;
  bool all_segments = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all-segments") {
      all_segments = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: dimsim-disasm file.s [--all-segments]\n");
      return 2;
    } else {
      input = arg;
    }
  }
  if (input.empty()) {
    std::fprintf(stderr, "usage: dimsim-disasm file.s [--all-segments]\n");
    return 2;
  }
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }
  std::stringstream source;
  source << in.rdbuf();

  dim::asmblr::Program program;
  try {
    program = dim::asmblr::assemble(source.str());
  } catch (const dim::asmblr::AsmError& e) {
    std::fprintf(stderr, "%s: %s\n", input.c_str(), e.what());
    return 1;
  }

  // Invert the symbol table for labels in the listing.
  std::unordered_map<uint32_t, std::string> labels;
  for (const auto& [name, addr] : program.symbols) labels.emplace(addr, name);

  const size_t limit = all_segments ? program.segments.size() : 1;
  for (size_t s = 0; s < limit && s < program.segments.size(); ++s) {
    const auto& seg = program.segments[s];
    for (size_t off = 0; off + 4 <= seg.bytes.size(); off += 4) {
      const uint32_t pc = seg.base + static_cast<uint32_t>(off);
      const uint32_t word = static_cast<uint32_t>(seg.bytes[off]) |
                            (static_cast<uint32_t>(seg.bytes[off + 1]) << 8) |
                            (static_cast<uint32_t>(seg.bytes[off + 2]) << 16) |
                            (static_cast<uint32_t>(seg.bytes[off + 3]) << 24);
      if (auto it = labels.find(pc); it != labels.end()) {
        std::printf("%s:\n", it->second.c_str());
      }
      const dim::isa::Instr instr = dim::isa::decode(word);
      std::printf("  %08x:  %08x  %s\n", pc, word,
                  dim::isa::disasm(instr, pc).c_str());
    }
  }
  return 0;
}
