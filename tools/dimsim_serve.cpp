// dimsim-serve: the long-lived batching simulation daemon (docs/serving.md).
//
// Everything the transparent-acceleration story amortizes stays resident
// in one process: assembled programs, lazily computed baselines, memoized
// sweep cells (snap::ResultStore under --store), and exported warm-start
// rcache images. Clients speak one JSON object per line — over a Unix
// socket (--socket) or stdin/stdout (--stdio) — and get one response line
// per request in per-session admission order. Compatible sweep work
// drained in one dispatcher pass merges into a single SweepEngine grid;
// budgeted runs execute in run_until checkpoint chunks so `cancel`
// requests and shutdown take effect promptly; a full admission queue
// answers `overloaded` instead of buffering without bound.
//
// With --procs N the daemon instead runs as a supervised pre-forked pool
// of N worker processes (serve::Supervisor): same protocol and transports,
// plus priority/deadline scheduling and crash-tolerant execution — a
// SIGKILLed worker is respawned and its in-flight request re-runs (from a
// migration snapshot when --store is set) with byte-identical responses.
//
// Usage:
//   dimsim-serve (--socket PATH | --stdio) [--workers N] [--procs N]
//                [--store DIR] [--queue N] [--batch N] [--checkpoint N]
//
// Exit codes: 0 = clean shutdown, 2 = usage error, 3 = cannot listen.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "serve/transport.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dimsim-serve (--socket PATH | --stdio) [--workers N]\n"
    "                    [--procs N] [--store DIR] [--queue N] [--batch N]\n"
    "                    [--checkpoint N]\n";

bool parse_count(const char* text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  bool stdio = false;
  uint64_t procs = 0;  // 0 = single-process Server; N = Supervisor pool
  dim::serve::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n%s", flag, kUsage);
        std::exit(2);
      }
      return argv[++i];
    };
    uint64_t n = 0;
    if (arg == "--socket") {
      socket_path = next("--socket");
    } else if (arg == "--stdio") {
      stdio = true;
    } else if (arg == "--store") {
      options.store_dir = next("--store");
    } else if (arg == "--workers") {
      if (!parse_count(next("--workers"), &n)) return 2;
      options.worker_threads = static_cast<unsigned>(n);
    } else if (arg == "--queue") {
      if (!parse_count(next("--queue"), &n) || n == 0) return 2;
      options.queue_capacity = static_cast<size_t>(n);
    } else if (arg == "--batch") {
      if (!parse_count(next("--batch"), &n) || n == 0) return 2;
      options.batch_max = static_cast<size_t>(n);
    } else if (arg == "--procs") {
      if (!parse_count(next("--procs"), &n) || n == 0 || n > 64) return 2;
      procs = n;
    } else if (arg == "--checkpoint") {
      if (!parse_count(next("--checkpoint"), &n) || n == 0) return 2;
      options.checkpoint_interval = n;
    } else {
      std::fprintf(stderr, "unknown flag %s\n%s", arg.c_str(), kUsage);
      return 2;
    }
  }
  const bool have_socket = !socket_path.empty();
  if (stdio == have_socket) {  // exactly one transport
    std::fputs(kUsage, stderr);
    return 2;
  }

  // Build whichever topology was asked for behind the one SessionHost
  // surface; transports don't know the difference.
  std::unique_ptr<dim::serve::SessionHost> host;
  if (procs > 0) {
    dim::serve::SupervisorOptions sup;
    sup.workers = static_cast<int>(procs);
    sup.queue_capacity = options.queue_capacity;
    sup.store_dir = options.store_dir;
    sup.checkpoint_interval = options.checkpoint_interval;
    sup.engine_threads = options.worker_threads;
    host = std::make_unique<dim::serve::Supervisor>(sup);
  } else {
    host = std::make_unique<dim::serve::Server>(options);
  }

  if (stdio) {
    dim::serve::serve_stdio(*host, std::cin, std::cout);
    host->shutdown();
    return 0;
  }

  dim::serve::UnixSocketServer listener(*host, socket_path);
  std::string error;
  if (!listener.start(&error)) {
    std::fprintf(stderr, "dimsim-serve: %s\n", error.c_str());
    return 3;
  }
  std::fprintf(stderr, "dimsim-serve: listening on %s\n", socket_path.c_str());
  listener.run();  // returns once a shutdown request lands
  host->shutdown();
  return 0;
}
