#!/usr/bin/env python3
"""Diff the committed BENCH_*.json metrics between two git revisions.

The repo pins benchmark results as small JSON files (BENCH_simulator.json,
BENCH_serve.json, BENCH_table2.json, ...). This tool compares every numeric
leaf between a baseline revision (default: HEAD) and the working tree — or
any two revisions — and reports regressions and improvements with their
relative change.

Direction is inferred from the metric name: latencies and miss counts are
lower-is-better, throughputs and speedups higher-is-better; metrics whose
direction is unknown are listed as neutral changes. Exit code is always 0
unless --gate is given: the step is informational by default so CI can
surface perf drift on every PR without blocking merges on noisy runners.

Usage:
  tools/bench_diff.py                      # HEAD vs working tree
  tools/bench_diff.py --base origin/main   # branch-point comparison
  tools/bench_diff.py --base HEAD~5 --rev HEAD
  tools/bench_diff.py --gate 0.25          # fail on >25% regression
"""

import argparse
import json
import math
import subprocess
import sys
from pathlib import Path

# Substrings that decide whether a metric should go down or up. Checked in
# order; first hit wins. Names carry units in this repo (seconds, _ms,
# per_sec), so substring matching is reliable.
LOWER_IS_BETTER = ("_ms", "seconds", "misses", "evictions", "bytes", "cycles",
                   "energy_nj", "fallbacks")
HIGHER_IS_BETTER = ("per_sec", "per_s", "speedup", "hits", "cells", "savings")
# Configuration/identity fields: differences are reported as "changed", not
# scored — a different request count makes timings incomparable anyway.
NEUTRAL = ("format_version", "requests", "workers", "reps", "host_cpus",
           "procs", "points", "threads", "seeds")


def repo_root():
    out = subprocess.run(["git", "rev-parse", "--show-toplevel"],
                         capture_output=True, text=True, check=True)
    return Path(out.stdout.strip())


def bench_files(root, rev):
    """Names of BENCH_*.json present at `rev` (None = working tree)."""
    if rev is None:
        return sorted(p.name for p in root.glob("BENCH_*.json"))
    out = subprocess.run(["git", "ls-tree", "--name-only", rev],
                         cwd=root, capture_output=True, text=True)
    if out.returncode != 0:
        return []
    return sorted(n for n in out.stdout.splitlines()
                  if n.startswith("BENCH_") and n.endswith(".json"))


def load(root, rev, name):
    if rev is None:
        try:
            return json.loads((root / name).read_text())
        except (OSError, json.JSONDecodeError):
            return None
    out = subprocess.run(["git", "show", f"{rev}:{name}"],
                         cwd=root, capture_output=True, text=True)
    if out.returncode != 0:
        return None
    try:
        return json.loads(out.stdout)
    except json.JSONDecodeError:
        return None


def flatten(value, prefix=""):
    """Yield (dotted_path, number) for every numeric leaf."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield prefix, float(value)
    elif isinstance(value, dict):
        for key, child in value.items():
            yield from flatten(child, f"{prefix}.{key}" if prefix else key)
    elif isinstance(value, list):
        for i, child in enumerate(value):
            yield from flatten(child, f"{prefix}[{i}]")


def direction(path):
    leaf = path.rsplit(".", 1)[-1].lower()
    for token in NEUTRAL:
        if token in leaf:
            return 0
    for token in LOWER_IS_BETTER:
        if token in leaf:
            return -1
    for token in HIGHER_IS_BETTER:
        if token in leaf:
            return +1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", default="HEAD",
                        help="baseline git revision (default: HEAD)")
    parser.add_argument("--rev", default=None,
                        help="comparison revision (default: working tree)")
    parser.add_argument("--gate", type=float, default=None, metavar="FRAC",
                        help="exit 1 if any scored metric regresses by more "
                             "than FRAC (e.g. 0.25 = 25%%)")
    parser.add_argument("--min-delta", type=float, default=0.02,
                        help="ignore relative changes below this (default 2%%)")
    args = parser.parse_args()

    root = repo_root()
    names = sorted(set(bench_files(root, args.base)) |
                   set(bench_files(root, args.rev)))
    if not names:
        print("bench-diff: no BENCH_*.json files found")
        return 0

    regressions, wins, neutral = [], [], []
    for name in names:
        old_doc = load(root, args.base, name)
        new_doc = load(root, args.rev, name)
        if old_doc is None or new_doc is None:
            side = "baseline" if old_doc is None else "comparison"
            print(f"bench-diff: {name}: missing in {side}, skipped")
            continue
        old = dict(flatten(old_doc))
        new = dict(flatten(new_doc))
        for path in sorted(old.keys() & new.keys()):
            a, b = old[path], new[path]
            if a == b:
                continue
            rel = math.inf if a == 0 else (b - a) / abs(a)
            if abs(rel) < args.min_delta:
                continue
            entry = (name, path, a, b, rel)
            sign = direction(path)
            if sign == 0:
                neutral.append(entry)
            elif (rel > 0) == (sign < 0):
                regressions.append(entry)
            else:
                wins.append(entry)

    rev_label = args.rev or "working tree"

    def show(title, entries):
        if not entries:
            return
        print(f"\n{title}:")
        for name, path, a, b, rel in sorted(entries, key=lambda e: -abs(e[4])):
            print(f"  {name}:{path}: {a:g} -> {b:g}  ({rel:+.1%})")

    print(f"bench-diff: {args.base} vs {rev_label} "
          f"({len(names)} file(s), threshold {args.min_delta:.0%})")
    show("regressions", regressions)
    show("improvements", wins)
    show("other changes (direction unknown)", neutral)
    if not (regressions or wins or neutral):
        print("no metric moved beyond the threshold")

    if args.gate is not None:
        over = [e for e in regressions if abs(e[4]) > args.gate]
        if over:
            print(f"\nbench-diff: FAIL — {len(over)} metric(s) regressed "
                  f"beyond {args.gate:.0%}")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
